// Discrete-event simulation kernel: a simulated clock and an event queue.
//
// All activity in the simulated cluster (message delivery, log-device I/O
// completion, timer pops) is an event scheduled at a simulated time. The
// kernel is single-threaded and fully deterministic: ties are broken by
// schedule order.
//
// Hot-path design:
//   - Handlers live in a slab indexed by a 32-bit slot carried inside the
//     queue entry, so dispatch performs zero hash lookups, and closures that
//     fit InlineFunction's buffer are scheduled without heap allocation.
//   - Events within the near horizon (16.4ms of simulated time — message
//     deliveries, log-device completions) go into a timing wheel with one
//     FIFO bucket per simulated microsecond: O(1) schedule and pop. Far
//     events (timeouts, think timers) go to an overflow 4-ary min-heap and
//     migrate into the wheel when the clock approaches them.
//   - Cancel() marks the slot as a tombstone (O(1)); tombstones are
//     reclaimed lazily when reached, and storage is compacted when they
//     outnumber live events, keeping Cancel O(log n) amortized and fixing
//     the seed's leak of cancelled far-future entries.
//
// Ordering invariant: execution order is exactly ascending (at, seq), where
// seq is schedule order — identical to a single global priority queue, so
// run order is bit-for-bit reproducible.

#ifndef TPC_SIM_EVENT_QUEUE_H_
#define TPC_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_function.h"
#include "util/logging.h"

namespace tpc::sim {

/// Simulated time in microseconds.
using Time = int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Handle used to cancel a scheduled event. Encodes (generation, slot) so a
/// stale handle can never cancel an unrelated later event that reused the
/// same slab slot.
using EventId = uint64_t;

/// The simulation event loop.
class EventQueue {
 public:
  /// Event handler. The 48-byte buffer covers every hot-path closure in the
  /// system (a network delivery captures 16 bytes; a std::function fits).
  using Callback = InlineFunction<48>;

  EventQueue();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `at` (>= now()).
  /// Events scheduled for the same instant run in schedule order. Templated
  /// so the closure is constructed directly in its slab slot.
  template <typename F>
  EventId ScheduleAt(Time at, F&& fn) {
    TPC_CHECK(at >= now_);
    const uint32_t slot = AllocSlot();
    Slot& s = slots_[slot];
    ++s.gen;
    s.fn.emplace(std::forward<F>(fn));
    s.armed = true;
    ++live_;
    const EventId id = (static_cast<EventId>(s.gen) << 32) | slot;
    Push(at, slot, s.gen);
    return id;
  }

  /// Schedules `fn` to run `delay` after now().
  template <typename F>
  EventId ScheduleAfter(Time delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool Cancel(EventId id);

  /// Runs a single event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains or `max_events` have run.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= t, then sets now() to t.
  uint64_t RunUntil(Time t);

  /// Number of pending (non-cancelled) events.
  size_t pending() const { return live_; }

  /// Stored entries including not-yet-reclaimed cancellation tombstones.
  /// Bounded: compaction keeps far-future tombstones <= max(live, a small
  /// constant), so cancelled timers cannot leak.
  size_t queued() const { return wheel_count_ + heap_.size(); }

  /// Total events executed over this queue's lifetime.
  uint64_t executed() const { return executed_; }

 private:
  static constexpr size_t kWheelBits = 14;  // 16384us near horizon
  static constexpr size_t kWheelSize = size_t{1} << kWheelBits;
  static constexpr size_t kWheelMask = kWheelSize - 1;
  static constexpr size_t kBitmapWords = kWheelSize / 64;

  struct Slot {
    Callback fn;
    uint32_t gen = 0;    // bumped on every (re)allocation of the slot
    bool armed = false;  // scheduled and not cancelled
  };

  /// Wheel bucket entry. The event time is implied by the bucket (one
  /// bucket per microsecond within the horizon) and FIFO order within a
  /// bucket is schedule order, so neither needs storing.
  struct WheelEntry {
    uint32_t slot;
    uint32_t gen;
  };

  /// Overflow heap entry for events beyond the wheel horizon.
  struct Entry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO within an instant
    uint32_t slot;
    uint32_t gen;
  };

  static bool Before(const Entry& x, const Entry& y) {
    return x.at != y.at ? x.at < y.at : x.seq < y.seq;
  }

  uint32_t AllocSlot();
  void Push(Time at, uint32_t slot, uint32_t gen);
  /// Finds the next live event (purging tombstones on the way) and leaves
  /// the cursor on it. False when the queue holds no live events.
  bool NextLiveTime(Time* at);
  /// Moves the wheel window to start at `base` (wheel must be empty) and
  /// migrates overflow events inside the new horizon into buckets.
  void AdvanceWheelTo(Time base);
  void Compact();

  // 4-ary overflow-heap primitives.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopHeapTop();

  void SetBit(size_t i) { occupied_[i >> 6] |= uint64_t{1} << (i & 63); }
  void ClearBit(size_t i) { occupied_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  /// First occupied bucket index scanning circularly from `idx`, or
  /// kWheelSize when the wheel is empty.
  size_t ScanFrom(size_t idx) const;

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;        // armed events
  size_t tombstones_ = 0;  // cancelled entries still stored
  size_t wheel_count_ = 0; // entries in wheel buckets (incl. tombstones)

  // Timing wheel covering [wheel_base_, wheel_base_ + kWheelSize).
  // Invariant: wheel_base_ <= now(), and the overflow heap only holds
  // events with at >= wheel_base_ + kWheelSize.
  Time wheel_base_ = 0;
  Time cursor_time_ = 0;   // scan position; buckets before it are empty
  size_t bucket_pos_ = 0;  // consumed prefix of the cursor's bucket
  std::vector<std::vector<WheelEntry>> wheel_;
  std::array<uint64_t, kBitmapWords> occupied_{};

  std::vector<Entry> heap_;  // 4-ary min-heap of far-future events
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_EVENT_QUEUE_H_
