// Discrete-event simulation kernel: a simulated clock and an event queue.
//
// All activity in the simulated cluster (message delivery, log-device I/O
// completion, timer pops) is an event scheduled at a simulated time. The
// kernel is single-threaded and fully deterministic: ties are broken by
// schedule order.

#ifndef TPC_SIM_EVENT_QUEUE_H_
#define TPC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tpc::sim {

/// Simulated time in microseconds.
using Time = int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Handle used to cancel a scheduled event.
using EventId = uint64_t;

/// The simulation event loop.
class EventQueue {
 public:
  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `at` (>= now()).
  /// Events scheduled for the same instant run in schedule order.
  EventId ScheduleAt(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now().
  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool Cancel(EventId id);

  /// Runs a single event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains or `max_events` have run.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= t, then sets now() to t.
  uint64_t RunUntil(Time t);

  /// Number of pending (non-cancelled) events.
  size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO within an instant
    EventId id;
    // Ordered as a min-heap via operator> in the priority_queue comparator.
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_EVENT_QUEUE_H_
