// Execution trace: a structured record of everything that happened during a
// simulation — message sends/receives, log writes, state transitions,
// crashes, heuristic decisions. The benches that reproduce the paper's
// figures print these traces as time-sequence diagrams; tests assert on them.

#ifndef TPC_SIM_TRACE_H_
#define TPC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace tpc::sim {

/// Category of a trace entry.
enum class TraceKind : unsigned char {
  kSend,       ///< network message leaves a node
  kReceive,    ///< network message arrives at a node
  kLogWrite,   ///< non-forced log append
  kLogForce,   ///< forced log append (write + wait for stable storage)
  kState,      ///< protocol state transition
  kCrash,      ///< node crash
  kRecover,    ///< node restart / recovery begins
  kHeuristic,  ///< in-doubt participant decided unilaterally
  kLock,       ///< lock acquired
  kUnlock,     ///< locks released (transaction end)
  kApp,        ///< application-level event
};

std::string_view TraceKindToString(TraceKind kind);

/// One observed event.
struct TraceEntry {
  Time at = 0;
  TraceKind kind = TraceKind::kApp;
  std::string node;    ///< acting node name
  std::string peer;    ///< remote node for Send/Receive, else empty
  uint64_t txn = 0;    ///< transaction id, 0 if not transaction-scoped
  std::string detail;  ///< message type, record type, state name, ...
};

/// Append-only trace with simple filtering and rendering.
class Trace {
 public:
  void Add(TraceEntry e) {
    if (capturing_) entries_.push_back(std::move(e));
  }
  void Clear() { entries_.clear(); }

  /// Capture toggle: benches that only measure throughput turn capture off
  /// so hot paths can skip building detail strings entirely. Defaults to on;
  /// simulations that assert on traces are unaffected.
  void set_capture(bool on) { capturing_ = on; }
  bool capturing() const { return capturing_; }

  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// Visits entries matching `pred(entry)` in order, without copying them.
  /// Replaces the old OfKind/OfTxn accessors, which materialized a full
  /// vector of entry copies per call.
  template <typename Pred, typename Fn>
  void ForEach(Pred&& pred, Fn&& fn) const {
    for (const TraceEntry& e : entries_)
      if (pred(e)) fn(e);
  }

  /// Count of entries matching kind (and node, if non-empty).
  size_t Count(TraceKind kind, std::string_view node = {}) const;

  /// Count of entries for one transaction.
  size_t CountTxn(uint64_t txn) const;

  /// Renders a figure-style time sequence:
  ///   [   123us] node1 -> node2  SEND    Prepare       (txn 7)
  ///   [   150us] node2           FORCE   prepared      (txn 7)
  std::string Render() const;

  /// Renders only one transaction's entries.
  std::string Render(uint64_t txn) const;

 private:
  static void AppendEntry(std::string* out, const TraceEntry& e);

  std::vector<TraceEntry> entries_;
  bool capturing_ = true;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_TRACE_H_
