// InlineFunction: a move-only std::function replacement with a small-buffer
// store, so scheduling an event whose closure fits in the buffer performs no
// heap allocation. The simulation kernel schedules millions of small closures
// (message deliveries, timer pops), which makes the std::function
// control-block allocation a measurable hot-path cost.
//
// The second template parameter is the call signature and defaults to
// void(), so kernel call sites can keep writing InlineFunction<48>. The lock
// manager stores grant callbacks as InlineFunction<N, void(Status)>.
//
// Closures larger than the buffer fall back to a single heap allocation,
// preserving std::function semantics for cold paths.

#ifndef TPC_SIM_INLINE_FUNCTION_H_
#define TPC_SIM_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tpc::sim {

template <size_t BufSize, typename Sig = void()>
class InlineFunction;

template <size_t BufSize, typename R, typename... Args>
class InlineFunction<BufSize, R(Args...)> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit by design, like std::function
    emplace(std::forward<F>(f));
  }

  /// Destroys the current target (if any) and constructs `f` in place —
  /// lets callers skip the move-construct a temporary would cost.
  /// Emplacing another InlineFunction of the same type adopts its target
  /// rather than wrapping it (wrapping would double-indirect the call and,
  /// for buffers at capacity, force a heap allocation — the runtime
  /// adapters forward Callback values through this path).
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (std::is_same_v<Fn, InlineFunction>) {
      *this = std::move(f);
    } else if constexpr (sizeof(Fn) <= BufSize && alignof(Fn) <= kAlign &&
                         std::is_nothrow_move_constructible_v<Fn>) {
      reset();
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::table;
    } else {
      reset();
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::table;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept : ops_(o.ops_) {
    if (ops_) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      if (ops_) ops_->destroy(buf_);
      ops_ = o.ops_;
      if (ops_) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() {
    if (ops_) ops_->destroy(buf_);
  }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_) ops_->destroy(buf_);
    ops_ = nullptr;
  }

 private:
  static constexpr size_t kAlign = alignof(std::max_align_t);

  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-construct into dst from src, then destroy src's residue.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static R Invoke(void* p, Args&&... args) {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops table{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* ptr(void* p) { return *static_cast<Fn**>(p); }
    static R Invoke(void* p, Args&&... args) {
      return (*ptr(p))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) { ::new (dst) Fn*(ptr(src)); }
    static void Destroy(void* p) { delete ptr(p); }
    static constexpr Ops table{&Invoke, &Relocate, &Destroy};
  };

  alignas(kAlign) unsigned char buf_[BufSize];
  const Ops* ops_ = nullptr;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_INLINE_FUNCTION_H_
