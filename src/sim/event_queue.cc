#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

namespace tpc::sim {

namespace {
constexpr uint64_t kSlotMask = (uint64_t{1} << 32) - 1;
}  // namespace

EventQueue::EventQueue() : wheel_(kWheelSize) {}

uint32_t EventQueue::AllocSlot() {
  if (!free_.empty()) {
    uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  TPC_CHECK(slots_.size() < kSlotMask);
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::Push(Time at, uint32_t slot, uint32_t gen) {
  if (at < wheel_base_ + static_cast<Time>(kWheelSize)) {
    // The cursor may already have drained and passed this instant's bucket
    // (at == now is legal); step it back so the event is found. Rewinding
    // re-enters the cursor's bucket from position 0, so its consumed prefix
    // (entries whose slots were already freed) must be dropped first or it
    // would be scanned a second time.
    if (at < cursor_time_) {
      if (bucket_pos_ > 0) {
        std::vector<WheelEntry>& cb =
            wheel_[static_cast<size_t>(cursor_time_) & kWheelMask];
        cb.erase(cb.begin(),
                 cb.begin() + static_cast<ptrdiff_t>(bucket_pos_));
      }
      cursor_time_ = at;
      bucket_pos_ = 0;
    }
    const size_t idx = static_cast<size_t>(at) & kWheelMask;
    wheel_[idx].push_back(WheelEntry{slot, gen});
    SetBit(idx);
    ++wheel_count_;
  } else {
    heap_.push_back(Entry{at, next_seq_++, slot, gen});
    SiftUp(heap_.size() - 1);
  }
}

size_t EventQueue::ScanFrom(size_t idx) const {
  size_t w = idx >> 6;
  uint64_t word = occupied_[w] & (~uint64_t{0} << (idx & 63));
  for (size_t steps = 0; steps <= kBitmapWords; ++steps) {
    if (word != 0)
      return (w << 6) + static_cast<size_t>(std::countr_zero(word));
    w = (w + 1) & (kBitmapWords - 1);
    word = occupied_[w];
  }
  return kWheelSize;
}

bool EventQueue::NextLiveTime(Time* at) {
  for (;;) {
    if (wheel_count_ > 0) {
      const size_t cursor_idx = static_cast<size_t>(cursor_time_) & kWheelMask;
      const size_t found = ScanFrom(cursor_idx);
      TPC_CHECK(found != kWheelSize);
      const Time t =
          cursor_time_ + static_cast<Time>((found - cursor_idx) & kWheelMask);
      if (found != cursor_idx) {
        cursor_time_ = t;
        bucket_pos_ = 0;
      }
      std::vector<WheelEntry>& b = wheel_[found];
      while (bucket_pos_ < b.size()) {
        const WheelEntry we = b[bucket_pos_];
        if (slots_[we.slot].armed) {
          *at = t;
          return true;
        }
        // Tombstone: reclaim in place.
        free_.push_back(we.slot);
        --tombstones_;
        --wheel_count_;
        ++bucket_pos_;
      }
      b.clear();  // keeps capacity: steady-state buckets stop allocating
      bucket_pos_ = 0;
      ClearBit(found);
      cursor_time_ = t + 1;
      continue;
    }
    if (!heap_.empty()) {
      const Entry& e = heap_.front();
      if (!slots_[e.slot].armed) {
        free_.push_back(e.slot);
        PopHeapTop();
        --tombstones_;
        continue;
      }
      *at = e.at;
      return true;
    }
    return false;
  }
}

void EventQueue::AdvanceWheelTo(Time base) {
  TPC_CHECK(wheel_count_ == 0);
  // No counted entries remain, but the cursor's bucket may still hold its
  // consumed prefix (Step leaves executed entries in place) and the bitmap
  // may carry stale bits for buckets emptied by Compact. Reset both so the
  // re-based window starts genuinely clean.
  wheel_[static_cast<size_t>(cursor_time_) & kWheelMask].clear();
  occupied_.fill(0);
  wheel_base_ = base;
  cursor_time_ = base;
  bucket_pos_ = 0;
  const Time end = base + static_cast<Time>(kWheelSize);
  while (!heap_.empty() && heap_.front().at < end) {
    const Entry e = heap_.front();
    PopHeapTop();
    if (!slots_[e.slot].armed) {
      free_.push_back(e.slot);
      --tombstones_;
      continue;
    }
    // Heap pop order is (at, seq), so same-instant FIFO order is preserved
    // bucket by bucket.
    const size_t idx = static_cast<size_t>(e.at) & kWheelMask;
    wheel_[idx].push_back(WheelEntry{e.slot, e.gen});
    SetBit(idx);
    ++wheel_count_;
  }
}

bool EventQueue::Cancel(EventId id) {
  const uint32_t slot = static_cast<uint32_t>(id & kSlotMask);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.armed) return false;
  s.armed = false;
  s.fn.reset();  // release the closure's resources now, not at pop time
  --live_;
  ++tombstones_;
  // Keep storage from filling with dead entries under schedule-then-cancel
  // heavy loads (armed timers that almost never fire).
  if (tombstones_ > 64 && tombstones_ > live_) Compact();
  return true;
}

void EventQueue::Compact() {
  size_t removed = 0;
  // Overflow heap: drop entries of un-armed slots and re-heapify.
  auto dead = [this](const Entry& e) { return !slots_[e.slot].armed; };
  for (const Entry& e : heap_) {
    if (dead(e)) free_.push_back(e.slot);
  }
  const size_t heap_before = heap_.size();
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  removed += heap_before - heap_.size();
  for (size_t i = heap_.size() / 4 + 1; i-- > 0;) {
    if (i < heap_.size()) SiftDown(i);
  }
  // Wheel buckets, except the cursor's current one (its consumed prefix is
  // tracked by bucket_pos_, which filtering would invalidate).
  const size_t cursor_idx = static_cast<size_t>(cursor_time_) & kWheelMask;
  for (size_t w = 0; w < kBitmapWords; ++w) {
    uint64_t word = occupied_[w];
    while (word != 0) {
      const size_t idx =
          (w << 6) + static_cast<size_t>(std::countr_zero(word));
      word &= word - 1;
      if (idx == cursor_idx) continue;
      std::vector<WheelEntry>& b = wheel_[idx];
      auto keep = b.begin();
      for (const WheelEntry& we : b) {
        if (slots_[we.slot].armed) {
          *keep++ = we;
        } else {
          free_.push_back(we.slot);
          ++removed;
          --wheel_count_;
        }
      }
      b.erase(keep, b.end());
    }
  }
  TPC_CHECK(tombstones_ >= removed);
  tombstones_ -= removed;
}

void EventQueue::SiftUp(size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const Entry e = heap_[i];
  while (true) {
    const size_t first = i * 4 + 1;
    if (first >= n) break;
    size_t best = first;
    const size_t last = first + 4 < n ? first + 4 : n;
    for (size_t c = first + 1; c < last; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::PopHeapTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

bool EventQueue::Step() {
  Time t;
  if (!NextLiveTime(&t)) return false;
  // The next live event is either already under the cursor, or is the
  // overflow-heap head with the wheel empty — move the window to it.
  if (wheel_count_ == 0) AdvanceWheelTo(t);
  std::vector<WheelEntry>& b =
      wheel_[static_cast<size_t>(cursor_time_) & kWheelMask];
  const WheelEntry we = b[bucket_pos_++];
  --wheel_count_;
  Slot& s = slots_[we.slot];
  // Move the closure out before invoking: the handler may schedule events,
  // growing slots_ and reusing this slot.
  Callback fn = std::move(s.fn);
  s.armed = false;
  --live_;
  free_.push_back(we.slot);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

uint64_t EventQueue::Run(uint64_t max_events) {
  uint64_t n = 0;
  Time t;
  while (n < max_events && NextLiveTime(&t)) {
    if (wheel_count_ == 0) AdvanceWheelTo(t);
    // Drain the cursor's bucket without a bitmap rescan per event. Handlers
    // may append same-instant events (at == now) to this very bucket, so the
    // vector is re-indexed and its size re-read every pass; they cannot
    // schedule earlier, so the cursor cannot move under us.
    const size_t idx = static_cast<size_t>(cursor_time_) & kWheelMask;
    now_ = t;  // NextLiveTime guarantees an armed entry at bucket_pos_
    while (n < max_events && bucket_pos_ < wheel_[idx].size()) {
      const WheelEntry we = wheel_[idx][bucket_pos_++];
      --wheel_count_;
      Slot& s = slots_[we.slot];
      if (!s.armed) {
        free_.push_back(we.slot);
        --tombstones_;
        continue;
      }
      Callback fn = std::move(s.fn);
      s.armed = false;
      --live_;
      free_.push_back(we.slot);
      ++executed_;
      ++n;
      fn();
    }
  }
  return n;
}

uint64_t EventQueue::RunUntil(Time t) {
  uint64_t n = 0;
  Time next;
  while (NextLiveTime(&next) && next <= t) {
    Step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace tpc::sim
