#include "sim/event_queue.h"

#include "util/logging.h"

namespace tpc::sim {

EventId EventQueue::ScheduleAt(Time at, std::function<void()> fn) {
  TPC_CHECK(at >= now_);
  EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    auto it = handlers_.find(e.id);
    TPC_CHECK(it != handlers_.end());
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = e.at;
    fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t EventQueue::RunUntil(Time t) {
  uint64_t n = 0;
  while (!heap_.empty()) {
    // Skip cancelled entries at the head so the time check sees a live event.
    Entry e = heap_.top();
    if (cancelled_.count(e.id)) {
      heap_.pop();
      cancelled_.erase(e.id);
      continue;
    }
    if (e.at > t) break;
    Step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace tpc::sim
