// Failure injection. Protocol code is instrumented with named *crash points*
// (e.g. "sub.after_prepared_force"); a test or bench arms triggers that crash
// a specific node the Nth time it reaches a point. Timed crashes, delayed
// restarts, and scheduled link flaps are supported via the event queue.
//
// Hot-path design: (node, point) pairs are interned to dense uint32 ids and
// the per-pair state (hit counters, armed flag) lives in flat per-node
// vectors, so an unarmed CrashPoint() is two array indexes and two counter
// increments — no string building, no hashing, no allocation. Instrumented
// components intern their node name and point names once at construction and
// report hits by id; the string overloads remain for tests and scripts.
//
// Occurrence counting is per *node epoch*: a node's epoch counters reset
// every time it crashes, so "crash the first time this point is reached
// after recovery" (double-failure schedules) is expressible by arming a
// trigger for a later epoch. hits() keeps whole-simulation totals.

#ifndef TPC_SIM_FAILURE_INJECTOR_H_
#define TPC_SIM_FAILURE_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace tpc::sim {

/// Decides when nodes crash. The harness registers a crash callback per node;
/// protocol code reports crash points; armed triggers fire the callback.
class FailureInjector {
 public:
  using CrashFn = std::function<void()>;
  /// Installed by the harness to flip a named link up/down (flap schedules).
  using LinkFn =
      std::function<void(const std::string& a, const std::string& b, bool down)>;

  /// Matches a trigger against any node epoch (the default).
  static constexpr int kAnyEpoch = -1;

  /// `events` enables the Schedule* entry points; a null injector still
  /// supports crash points (unit tests construct it bare).
  explicit FailureInjector(EventQueue* events = nullptr) : events_(events) {}

  /// Registers the functions that crash (and optionally restart) `node`.
  /// Re-registering overwrites the previous callbacks, so a harness rebuilt
  /// on a reused injector never leaves dangling closures behind.
  void RegisterNode(const std::string& node, CrashFn crash,
                    CrashFn restart = nullptr);

  /// Arms a trigger: crash `node` on the `occurrence`-th (1-based) time it
  /// reaches crash point `point` within node epoch `epoch` (0 = before the
  /// first crash, 1 = after the first recovery, ...; kAnyEpoch matches the
  /// current epoch's count whatever the epoch is).
  void ArmCrash(const std::string& node, const std::string& point,
                int occurrence = 1, int epoch = kAnyEpoch);

  // --- interning surface ----------------------------------------------------

  /// Dense id for `node`, assigning one on first sight. Interning does not
  /// register: instrumented components intern before the harness attaches.
  uint32_t InternNode(const std::string& node);
  /// Dense id for a crash-point name.
  uint32_t InternPoint(const std::string& point);

  /// Reached by protocol code (hot path: callers pass pre-interned ids).
  /// Fires an armed trigger if one matches. Returns true if the node
  /// crashed (caller must stop touching state).
  bool CrashPoint(uint32_t node, uint32_t point);

  /// By-name compatibility entry (tests, scripts): interns and forwards.
  bool CrashPoint(const std::string& node, const std::string& point);

  /// Crashes `node` immediately and starts its next epoch.
  void CrashNow(const std::string& node);

  /// Restarts `node` via its registered restart callback (if any).
  void RestartNow(const std::string& node);

  /// Schedules a crash / a restart through the event queue.
  void ScheduleCrash(const std::string& node, Time at);
  void ScheduleRestartAfter(const std::string& node, Time delay);

  // --- link faults ----------------------------------------------------------

  /// Installs the link controller (the harness wires it to the network).
  void SetLinkController(LinkFn fn) { link_fn_ = std::move(fn); }

  /// Schedules one flap of the (a, b) link: down at `down_at`, back up at
  /// `up_at`. Requires a link controller and an event queue.
  void ScheduleLinkFlap(const std::string& a, const std::string& b,
                        Time down_at, Time up_at);

  // --- introspection --------------------------------------------------------

  /// Crash-point hits observed over the whole simulation (armed or not).
  uint64_t hits(const std::string& node, const std::string& point) const;

  /// Hits within the node's current epoch (what triggers match against).
  uint64_t epoch_hits(const std::string& node, const std::string& point) const;

  /// The node's current epoch (number of crashes so far).
  int node_epoch(const std::string& node) const;

  /// Removes every armed trigger but keeps registrations, counters, and
  /// epochs: the torture oracle disarms before its restart passes so a
  /// pending trigger cannot fire mid-audit.
  void DisarmAll();

  /// Removes all armed triggers, counters, epochs, and node registrations
  /// (interned ids remain valid). Safe to call between harness rebuilds.
  void Reset();

 private:
  struct Trigger {
    int occurrence;
    int epoch;  ///< kAnyEpoch or a specific node epoch
    bool fired = false;
  };
  /// Flat per-(node, point) cell.
  struct PointState {
    uint64_t total_hits = 0;  ///< whole simulation
    uint64_t epoch_hits = 0;  ///< reset when the node crashes
    bool armed = false;       ///< any trigger targets this cell
  };
  struct NodeState {
    CrashFn crash;
    CrashFn restart;
    int epoch = 0;
  };

  static uint64_t PairKey(uint32_t node, uint32_t point) {
    return (static_cast<uint64_t>(node) << 32) | point;
  }
  PointState& Cell(uint32_t node, uint32_t point);
  void CrashNode(uint32_t node);

  EventQueue* events_;
  LinkFn link_fn_;

  std::unordered_map<std::string, uint32_t> node_ids_;
  std::unordered_map<std::string, uint32_t> point_ids_;
  size_t point_count_ = 0;

  std::vector<NodeState> nodes_;                 // indexed by node id
  std::vector<std::vector<PointState>> cells_;   // [node id][point id]
  std::unordered_map<uint64_t, std::vector<Trigger>> triggers_;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_FAILURE_INJECTOR_H_
