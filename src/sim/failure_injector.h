// Failure injection. Protocol code is instrumented with named *crash points*
// (e.g. "sub.after_force_prepared"); a test or bench arms triggers that crash
// a specific node the Nth time it reaches a point. Timed crashes and
// automatic recovery delays are also supported via the event queue.

#ifndef TPC_SIM_FAILURE_INJECTOR_H_
#define TPC_SIM_FAILURE_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace tpc::sim {

/// Decides when nodes crash. The harness registers a crash callback per node;
/// protocol code reports crash points; armed triggers fire the callback.
class FailureInjector {
 public:
  using CrashFn = std::function<void()>;

  /// Registers the function that crashes `node` (installed by the harness).
  void RegisterNode(const std::string& node, CrashFn crash);

  /// Arms a trigger: crash `node` on the `occurrence`-th (1-based) time it
  /// reaches crash point `point`.
  void ArmCrash(const std::string& node, const std::string& point,
                int occurrence = 1);

  /// Reached by protocol code. Fires an armed trigger if one matches.
  /// Returns true if the node crashed (caller must stop touching state).
  bool CrashPoint(const std::string& node, const std::string& point);

  /// Crashes `node` immediately.
  void CrashNow(const std::string& node);

  /// Number of crash-point hits observed (armed or not), for test assertions.
  uint64_t hits(const std::string& node, const std::string& point) const;

  /// Removes all armed triggers and counters.
  void Reset();

 private:
  struct Trigger {
    int occurrence;
    bool fired = false;
  };

  static std::string Key(const std::string& node, const std::string& point) {
    return node + "#" + point;
  }

  std::unordered_map<std::string, CrashFn> nodes_;
  std::unordered_map<std::string, std::vector<Trigger>> triggers_;
  std::unordered_map<std::string, uint64_t> hit_counts_;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_FAILURE_INJECTOR_H_
