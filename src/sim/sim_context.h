// SimContext bundles the simulation-wide services every component needs:
// the event queue/clock, the execution trace, the failure injector, and the
// seeded RNG. One SimContext per simulated cluster.

#ifndef TPC_SIM_SIM_CONTEXT_H_
#define TPC_SIM_SIM_CONTEXT_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/failure_injector.h"
#include "sim/trace.h"
#include "util/random.h"

namespace tpc::sim {

/// Shared simulation services. Not copyable; components hold a pointer.
class SimContext {
 public:
  explicit SimContext(uint64_t seed = 42) : failures_(&events_), rng_(seed) {}

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  EventQueue& events() { return events_; }
  Trace& trace() { return trace_; }
  FailureInjector& failures() { return failures_; }
  Random& rng() { return rng_; }

  Time now() const { return events_.now(); }

  /// Cluster-unique transaction ids (ids are global across nodes, as the
  /// paper's transaction identifiers are).
  uint64_t NextTxnId() { return ++txn_counter_; }

 private:
  uint64_t txn_counter_ = 0;
  EventQueue events_;
  Trace trace_;
  FailureInjector failures_;
  Random rng_;
};

}  // namespace tpc::sim

#endif  // TPC_SIM_SIM_CONTEXT_H_
