#include "harness/bench_report.h"

#include <cstdio>

#include "util/format.h"
#include "util/logging.h"

namespace tpc::harness {

namespace {

// Minimal JSON string escaping (labels are plain ASCII in practice).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  // %.17g round-trips doubles; trim to %g for readability where exact.
  std::string s = StringPrintf("%.12g", v);
  if (s == "inf" || s == "-inf" || s == "nan") return "0";
  return s;
}

}  // namespace

uint64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  unsigned long long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<uint64_t>(kb) * 1024;
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

void BenchReport::AddCell(const SweepCell& cell) { cells_.push_back(cell); }

void BenchReport::AddCells(const std::vector<SweepCell>& cells) {
  cells_.insert(cells_.end(), cells.begin(), cells.end());
}

void BenchReport::StopTimer() {
  if (wall_seconds_ >= 0.0) return;
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
}

double BenchReport::wall_seconds() {
  StopTimer();
  return wall_seconds_;
}

uint64_t BenchReport::total_events() const {
  uint64_t n = 0;
  for (const auto& c : cells_) n += c.events;
  return n;
}

uint64_t BenchReport::total_txns() const {
  uint64_t n = 0;
  for (const auto& c : cells_) n += c.txns;
  return n;
}

double BenchReport::events_per_sec() {
  const double w = wall_seconds();
  return w > 0 ? static_cast<double>(total_events()) / w : 0.0;
}

double BenchReport::sim_txns_per_sec() {
  const double w = wall_seconds();
  return w > 0 ? static_cast<double>(total_txns()) / w : 0.0;
}

std::string BenchReport::ToJson() {
  StopTimer();
  std::string out = "{\n";
  out += StringPrintf("  \"bench\": \"%s\",\n", JsonEscape(name_).c_str());
  out += StringPrintf("  \"threads\": %u,\n", threads_);
  out += StringPrintf("  \"wall_seconds\": %s,\n",
                      JsonNumber(wall_seconds_).c_str());
  out += StringPrintf("  \"events\": %llu,\n",
                      static_cast<unsigned long long>(total_events()));
  out += StringPrintf("  \"events_per_sec\": %s,\n",
                      JsonNumber(events_per_sec()).c_str());
  out += StringPrintf("  \"sim_txns\": %llu,\n",
                      static_cast<unsigned long long>(total_txns()));
  out += StringPrintf("  \"sim_txns_per_sec\": %s,\n",
                      JsonNumber(sim_txns_per_sec()).c_str());
  out += StringPrintf("  \"peak_rss_bytes\": %llu,\n",
                      static_cast<unsigned long long>(PeakRssBytes()));
  out += "  \"cells\": [\n";
  for (size_t i = 0; i < cells_.size(); ++i) {
    const SweepCell& c = cells_[i];
    out += "    {";
    out += StringPrintf("\"label\": \"%s\", ", JsonEscape(c.label).c_str());
    out += StringPrintf("\"events\": %llu, ",
                        static_cast<unsigned long long>(c.events));
    out += StringPrintf("\"txns\": %llu, ",
                        static_cast<unsigned long long>(c.txns));
    out += StringPrintf("\"sim_seconds\": %s",
                        JsonNumber(static_cast<double>(c.sim_time) /
                                   sim::kSecond)
                            .c_str());
    for (const auto& [key, value] : c.metrics) {
      out += StringPrintf(", \"%s\": %s", JsonEscape(key).c_str(),
                          JsonNumber(value).c_str());
    }
    out += i + 1 < cells_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string BenchReport::WriteJson(const std::string& dir) {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return path;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return path;
}

std::string BenchReport::Summary() {
  StopTimer();
  return StringPrintf(
      "[%s] %zu cells, %.3fs wall, %.2fM events/s, %.0f simulated txn/s "
      "(%u threads)",
      name_.c_str(), cells_.size(), wall_seconds_, events_per_sec() / 1e6,
      sim_txns_per_sec(), threads_);
}

}  // namespace tpc::harness
