// Machine-readable benchmark output: every bench writes a BENCH_<name>.json
// next to its human-readable table so a perf trajectory exists across
// commits (wall time, simulator events/sec, simulated txns/sec, and the
// per-cell metrics of the sweep it ran).

#ifndef TPC_HARNESS_BENCH_REPORT_H_
#define TPC_HARNESS_BENCH_REPORT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace tpc::harness {

/// Process peak resident set (VmHWM from /proc/self/status), in bytes.
/// Returns 0 where procfs is unavailable; callers treat 0 as "unknown".
uint64_t PeakRssBytes();

/// Collects sweep cells and timing for one bench run, then renders JSON.
/// Construct before the work starts (it starts the wall-clock timer).
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void AddCell(const SweepCell& cell);
  void AddCells(const std::vector<SweepCell>& cells);
  void set_threads(unsigned threads) { threads_ = threads; }

  /// Stops the wall timer (first call only) and returns the JSON document.
  std::string ToJson();

  /// Writes BENCH_<name>.json into `dir` and returns its path.
  std::string WriteJson(const std::string& dir = ".");

  /// One-line human summary: wall time, events/sec, simulated txns/sec.
  std::string Summary();

  // Derived totals (valid once cells are added; timer stops on first use).
  double wall_seconds();
  uint64_t total_events() const;
  uint64_t total_txns() const;
  double events_per_sec();
  double sim_txns_per_sec();

 private:
  void StopTimer();

  std::string name_;
  unsigned threads_ = 1;
  std::vector<SweepCell> cells_;
  std::chrono::steady_clock::time_point start_;
  double wall_seconds_ = -1.0;  // <0: still running
};

}  // namespace tpc::harness

#endif  // TPC_HARNESS_BENCH_REPORT_H_
