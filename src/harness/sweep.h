// Parallel sweep runner: executes N independent (config, seed) simulation
// cells across a thread pool and collects per-cell results in grid order.
//
// Concurrency contract: one SimContext (and Cluster) per cell, constructed
// inside the cell function on whichever worker thread runs it. Cells share
// no mutable state, so a parallel sweep is byte-identical to a serial run of
// the same grid — sweep_test.cc asserts this, and determinism inside a cell
// is untouched (the per-cell simulation is still single-threaded).

#ifndef TPC_HARNESS_SWEEP_H_
#define TPC_HARNESS_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace tpc::harness {

/// Result of one sweep cell.
struct SweepCell {
  std::string label;      ///< cell identity ("PA baseline @5ms", ...)
  uint64_t events = 0;    ///< simulator events executed in the cell
  uint64_t txns = 0;      ///< simulated transactions completed
  sim::Time sim_time = 0; ///< simulated duration of the cell
  /// Named measurements, in insertion order (kept stable for output).
  std::vector<std::pair<std::string, double>> metrics;

  void Add(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  /// Value of a metric, or `fallback`.
  double Get(std::string_view name, double fallback = 0.0) const;

  /// Canonical serialization (label + every field, fixed formatting).
  /// Two cells produced by identical simulations compare equal.
  std::string ToString() const;
};

/// Runs `fn(i)` for every i in [0, cells) across `threads` workers
/// (0 = hardware concurrency) and returns results in index order. `fn` must
/// be safe to call concurrently with itself — build all simulation state
/// locally. Exceptions from a cell are rethrown on the calling thread.
std::vector<SweepCell> RunSweep(size_t cells,
                                const std::function<SweepCell(size_t)>& fn,
                                unsigned threads = 0);

/// The worker count RunSweep(cells, ..., threads) would actually use
/// (0 resolves to hardware concurrency, clamped to the cell count).
unsigned ResolveThreads(unsigned threads, size_t cells);

}  // namespace tpc::harness

#endif  // TPC_HARNESS_SWEEP_H_
