#include "harness/torture.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "harness/cluster.h"
#include "sim/trace.h"
#include "tm/crash_points.h"
#include "util/format.h"
#include "util/logging.h"
#include "wal/wal_crash_points.h"

namespace tpc::harness {
namespace {

using tm::ProtocolKind;

enum class Topo { kPair, kChain, kStar, kPaxos, kPaxosF0 };

/// Internal scenario definition: protocol config + topology + workload
/// switches. Node naming: root "c0"; pair adds "s1"; chain adds cascaded
/// "m1" and leaf "s2"; star adds "s1" and (read-only) "r2"; paxos adds
/// "s1" and the acceptor-only "a2" (no RMs) — acceptors = {c0, s1, a2},
/// i.e. 2F+1 with F = 1.
struct Spec {
  const char* name;
  const char* proto_label;
  ProtocolKind protocol;
  Topo topo;
  bool last_agent = false;   ///< s1 is the last-agent candidate
  bool ro_leaf = false;      ///< r2 never writes (read-only vote)
  bool unsolicited = false;  ///< s1 votes before being asked
  bool heuristic = false;    ///< s1 decides heuristic commit when in doubt
  bool abort_vote = false;   ///< s1's RM votes NO
  bool leave_out = false;    ///< leave-out setup txn + exclusion on txn 2
  /// Group-commit pipeline under test (kCountTimer with gc=false means the
  /// seed synchronous-flush configuration the original scenarios froze).
  bool gc = false;
  wal::FlushPolicy flush = wal::FlushPolicy::kCountTimer;
};

const Spec kSpecs[] = {
    {"basic_pair", "basic", ProtocolKind::kBasic2PC, Topo::kPair},
    {"basic_chain", "basic", ProtocolKind::kBasic2PC, Topo::kChain},
    {"basic_abort", "basic", ProtocolKind::kBasic2PC, Topo::kPair,
     false, false, false, false, /*abort_vote=*/true},
    {"pa_pair", "pa", ProtocolKind::kPresumedAbort, Topo::kPair},
    {"pa_chain", "pa", ProtocolKind::kPresumedAbort, Topo::kChain},
    {"pa_abort", "pa", ProtocolKind::kPresumedAbort, Topo::kPair,
     false, false, false, false, /*abort_vote=*/true},
    {"pa_la_ro", "pa+la+ro", ProtocolKind::kPresumedAbort, Topo::kStar,
     /*last_agent=*/true, /*ro_leaf=*/true},
    {"pa_unsolicited", "pa", ProtocolKind::kPresumedAbort, Topo::kPair,
     false, false, /*unsolicited=*/true},
    {"pa_heur", "pa+heur", ProtocolKind::kPresumedAbort, Topo::kPair,
     false, false, false, /*heuristic=*/true},
    {"pn_pair", "pn", ProtocolKind::kPresumedNothing, Topo::kPair},
    {"pn_chain", "pn", ProtocolKind::kPresumedNothing, Topo::kChain},
    {"pn_abort", "pn", ProtocolKind::kPresumedNothing, Topo::kPair,
     false, false, false, false, /*abort_vote=*/true},
    {"pn_leaveout", "pn+leaveout", ProtocolKind::kPresumedNothing, Topo::kPair,
     false, false, false, false, false, /*leave_out=*/true},
    // Group-commit pipeline scenarios: same protocol flows, but forces ride
    // the WAL policy ladder so the wal.* crash points (flush in flight,
    // gather windows, steal races) become reachable.
    {"pa_gc_timer", "pa+gc", ProtocolKind::kPresumedAbort, Topo::kPair,
     false, false, false, false, false, false,
     /*gc=*/true, wal::FlushPolicy::kCountTimer},
    {"basic_gc_pipe", "basic+gc", ProtocolKind::kBasic2PC, Topo::kPair,
     false, false, false, false, false, false,
     /*gc=*/true, wal::FlushPolicy::kFlushPipelining},
    {"pa_gc_pipe", "pa+gc", ProtocolKind::kPresumedAbort, Topo::kPair,
     false, false, false, false, false, false,
     /*gc=*/true, wal::FlushPolicy::kFlushPipelining},
    {"pa_gc_wwl", "pa+gc", ProtocolKind::kPresumedAbort, Topo::kChain,
     false, false, false, false, false, false,
     /*gc=*/true, wal::FlushPolicy::kWorkersWriteLog},
    {"pn_gc_wilo", "pn+gc", ProtocolKind::kPresumedNothing, Topo::kPair,
     false, false, false, false, false, false,
     /*gc=*/true, wal::FlushPolicy::kWiloSteal},
    // Paxos Commit: the liveness oracle is strict here — a coordinator
    // crash must NOT block (in-doubt after full recovery is a violation,
    // never a `blocked` verdict), because any prepared participant can
    // finish the consensus against the surviving acceptor majority.
    {"paxos_flat", "paxos", ProtocolKind::kPaxosCommit, Topo::kPaxos},
    // F=0 degenerate: one acceptor, co-located at the coordinator. The
    // non-blocking property is traded away (the paper's point), but the
    // oracle still demands termination once the crashed node restarts —
    // the takeover queries the lone acceptor and finishes.
    {"paxos_f0", "paxos-f0", ProtocolKind::kPaxosCommit, Topo::kPaxosF0},
    {"paxos_abort", "paxos", ProtocolKind::kPaxosCommit, Topo::kPaxos,
     false, false, false, false, /*abort_vote=*/true},
    // One-phase family: no explicit Prepare — subordinates early-prepare
    // from a data-flow quiesce timer; the logless variant also skips the
    // subordinate's prepared force.
    {"onephase_pair", "1pc", ProtocolKind::kOnePhase, Topo::kPair},
    {"onephase_logless", "1pc-ll", ProtocolKind::kOnePhaseLogless,
     Topo::kPair},
};

const Spec* FindSpec(const std::string& name) {
  for (const Spec& s : kSpecs)
    if (name == s.name) return &s;
  return nullptr;
}

std::vector<std::string> SpecNodes(const Spec& spec) {
  switch (spec.topo) {
    case Topo::kPair: return {"c0", "s1"};
    case Topo::kChain: return {"c0", "m1", "s2"};
    case Topo::kStar: return {"c0", "s1", "r2"};
    case Topo::kPaxos: return {"c0", "s1", "a2"};
    case Topo::kPaxosF0: return {"c0", "s1"};
  }
  return {};
}

std::vector<std::pair<std::string, std::string>> SpecLinks(const Spec& spec) {
  switch (spec.topo) {
    case Topo::kPair: return {{"c0", "s1"}};
    case Topo::kChain: return {{"c0", "m1"}, {"m1", "s2"}};
    case Topo::kStar: return {{"c0", "s1"}, {"c0", "r2"}};
    // Full mesh: consensus traffic flows on every pair, so link loss and
    // flaps exercise the paxos paths too.
    case Topo::kPaxos: return {{"c0", "s1"}, {"c0", "a2"}, {"s1", "a2"}};
    case Topo::kPaxosF0: return {{"c0", "s1"}};
  }
  return {};
}

/// Drives the loop in 1s slices, restarting any crashed node
/// `recovery_delay` after its crash is observed.
struct Driver {
  Cluster& c;
  std::vector<std::string> nodes;
  sim::Time recovery_delay;
  std::map<std::string, bool> restart_pending;

  void Slice(sim::Time dt) {
    c.RunFor(dt);
    for (const std::string& n : nodes) {
      if (c.tm(n).IsUp() || restart_pending[n]) continue;
      restart_pending[n] = true;
      c.ctx().events().ScheduleAfter(recovery_delay, [this, n] {
        restart_pending[n] = false;
        if (!c.tm(n).IsUp()) c.node(n).Restart();
      });
    }
  }
  bool AllUp() const {
    for (const std::string& n : nodes)
      if (!c.tm(n).IsUp()) return false;
    return true;
  }
};

/// Durable-state projection of one node: every RM's committed store plus its
/// in-doubt flag for `txn`. Recovery idempotency compares these strings.
std::string SnapshotNode(Cluster& c, const std::string& name, uint64_t txn) {
  std::string out;
  Node& node = c.node(name);
  for (size_t i = 0; i < node.rm_count(); ++i) {
    rm::KVResourceManager& r = node.rm(i);
    for (const auto& [k, v] : r.store()) {
      out += k;
      out += '=';
      out += v;
      out += ';';
    }
    out += r.InDoubt(txn) ? "|in-doubt#" : "|clear#";
  }
  return out;
}

}  // namespace

std::string TortureConfig::Repro() const {
  std::string out = StringPrintf("scenario=%s seed=%llu", scenario.c_str(),
                                 static_cast<unsigned long long>(seed));
  if (!crash_node.empty()) {
    StringAppendF(&out, " crash=%s@%s occ=%d epoch=%d", crash_node.c_str(),
                  crash_point.c_str(), occurrence, epoch);
    if (!crash2_point.empty())
      StringAppendF(&out, " crash2=%s", crash2_point.c_str());
  }
  StringAppendF(&out, " delay_ms=%lld",
                static_cast<long long>(recovery_delay / sim::kMillisecond));
  if (loss_rate > 0.0) StringAppendF(&out, " loss=%.3f", loss_rate);
  if (flap) out += " flap=1";
  return out;
}

bool ParseRepro(const std::string& line, TortureConfig* out) {
  *out = TortureConfig();
  out->scenario.clear();
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(pos, end - pos);
    pos = end;
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "scenario") {
      out->scenario = value;
    } else if (key == "seed") {
      out->seed = strtoull(value.c_str(), nullptr, 10);
    } else if (key == "crash") {
      const size_t at = value.find('@');
      if (at == std::string::npos) return false;
      out->crash_node = value.substr(0, at);
      out->crash_point = value.substr(at + 1);
    } else if (key == "occ") {
      out->occurrence = atoi(value.c_str());
    } else if (key == "epoch") {
      out->epoch = atoi(value.c_str());
    } else if (key == "crash2") {
      out->crash2_point = value;
    } else if (key == "delay_ms") {
      out->recovery_delay = strtoll(value.c_str(), nullptr, 10) *
                            sim::kMillisecond;
    } else if (key == "loss") {
      out->loss_rate = strtod(value.c_str(), nullptr);
    } else if (key == "flap") {
      out->flap = value != "0";
    } else {
      return false;
    }
  }
  return !out->scenario.empty();
}

const std::vector<TortureScenario>& TortureScenarios() {
  static const std::vector<TortureScenario>* scenarios = [] {
    auto* v = new std::vector<TortureScenario>();
    for (const Spec& s : kSpecs)
      v->push_back(TortureScenario{s.name, s.proto_label,
                                   SpecNodes(s)});
    return v;
  }();
  return *scenarios;
}

TortureResult RunTortureCell(const TortureConfig& config) {
  TortureResult result;
  const Spec* spec = FindSpec(config.scenario);
  if (spec == nullptr) {
    result.violations.push_back("unknown scenario [repro: " + config.Repro() +
                                "]");
    return result;
  }
  const std::string repro = config.Repro();
  auto violation = [&result, &repro](const std::string& what) {
    result.violations.push_back(what + " [repro: " + repro + "]");
  };

  // --- build the cluster ----------------------------------------------------
  Cluster c(config.seed);
  const std::vector<std::string> nodes = SpecNodes(*spec);
  const auto links = SpecLinks(*spec);

  NodeOptions base;
  base.tm.protocol = spec->protocol;
  base.tm.vote_timeout = 5 * sim::kSecond;
  base.tm.ack_timeout = 3 * sim::kSecond;
  base.tm.inquiry_delay = 4 * sim::kSecond;
  base.tm.recovery_retry_interval = 6 * sim::kSecond;
  if (spec->gc) {
    base.group_commit.enabled = true;
    base.group_commit.policy = spec->flush;
    base.group_commit.group_size = 8;
    base.group_commit.group_timeout = 5 * sim::kMillisecond;
    // Depth 1 makes the single-txn workload exercise the submit-on-
    // completion path: the second force of a commit accumulates behind the
    // first and is submitted from the device completion (a wal.* window).
    base.group_commit.max_pipeline_depth = 1;
    base.group_commit.daemon_interval = 1 * sim::kMillisecond;
    // Small enough that a single record overflows an owner buffer, so WILO
    // steals race the protocol's crash windows on nearly every append.
    base.group_commit.worker_buffer_bytes = 32;
    base.log_queue_depth = 2;
  }
  if (tm::IsPaxos(spec->protocol)) {
    base.tm.acceptors = spec->topo == Topo::kPaxosF0
                            ? std::vector<std::string>{"c0"}
                            : std::vector<std::string>{"c0", "s1", "a2"};
  }
  for (const std::string& n : nodes) {
    NodeOptions options = base;
    if (n == "a2") options.num_rms = 0;  // acceptor-only machine
    if (n == "c0") {
      options.tm.last_agent_opt = spec->last_agent;
      if (spec->leave_out) {
        options.tm.leave_out_opt = true;
        options.tm.include_idle_sessions = true;
      }
    }
    if (n == "s1") {
      if (spec->heuristic) {
        options.tm.heuristic_policy = tm::HeuristicPolicy::kCommit;
        options.tm.heuristic_delay = 8 * sim::kSecond;
        options.tm.inquiry_delay = 12 * sim::kSecond;
      }
      if (spec->leave_out) {
        options.tm.ok_to_leave_out = true;
        options.rm_options.ok_to_leave_out = true;
      }
    }
    c.AddNode(n, options);
  }
  for (const auto& [a, b] : links) {
    tm::SessionOptions a_side;
    if (spec->last_agent && b == "s1") a_side.last_agent_candidate = true;
    c.Connect(a, b, a_side);
  }

  // Subordinate-side workload handlers.
  std::vector<std::pair<std::string, std::string>> writers;  // (node, key)
  writers.emplace_back("c0", "k_c0");
  auto add_writer = [&c, spec](const std::string& n) {
    c.tm(n).SetAppDataHandler(
        [&c, n, spec](uint64_t txn, const net::NodeId& from, std::string_view) {
          if (n == "m1" && from != "c0") return;
          c.tm(n).Write(txn, 0, "k_" + n, "v", [](Status) {});
          if (n == "m1") (void)c.tm(n).SendWork(txn, "s2");
          if (n == "s1" && spec->unsolicited) c.tm(n).UnsolicitedPrepare(txn);
        });
  };
  switch (spec->topo) {
    case Topo::kPair:
    case Topo::kPaxos:  // a2 holds no data; the work fans to s1 only
    case Topo::kPaxosF0:
      add_writer("s1");
      writers.emplace_back("s1", "k_s1");
      break;
    case Topo::kChain:
      add_writer("m1");
      add_writer("s2");
      writers.emplace_back("m1", "k_m1");
      writers.emplace_back("s2", "k_s2");
      break;
    case Topo::kStar:
      add_writer("s1");
      writers.emplace_back("s1", "k_s1");
      // r2: enrolled by SendWork but never writes — read-only vote.
      break;
  }

  if (config.after_build) config.after_build(c);

  // --- leave-out setup transaction (fault-free) -----------------------------
  if (spec->leave_out) {
    const uint64_t setup = c.tm("c0").Begin();
    c.tm("c0").Write(setup, 0, "setup_c0", "v", [](Status) {});
    (void)c.tm("c0").SendWork(setup, "s1");
    c.RunFor(sim::kSecond);
    DrivenCommit setup_result = c.CommitAndWait("c0", setup, 60 * sim::kSecond);
    if (!setup_result.completed) {
      violation("leave-out setup transaction did not complete");
      return result;
    }
    // txn 2 touches only the root; s1 (suspended, OK_TO_LEAVE_OUT) must be
    // excluded by the leave-out optimization.
  }

  // --- arm the fault schedule ----------------------------------------------
  sim::FailureInjector& failures = c.ctx().failures();
  if (!config.crash_node.empty()) {
    failures.ArmCrash(config.crash_node, config.crash_point, config.occurrence,
                      config.epoch);
    if (!config.crash2_point.empty())
      failures.ArmCrash(config.crash_node, config.crash2_point, 1, /*epoch=*/1);
  }
  if (config.loss_rate > 0.0) {
    for (const auto& [a, b] : links)
      c.network().SetLinkLossRate(a, b, config.loss_rate);
  }

  // --- the audited transaction ---------------------------------------------
  const uint64_t txn = c.tm("c0").Begin();
  c.tm("c0").Write(txn, 0, spec->leave_out ? "k2_c0" : "k_c0", "v",
                   [](Status) {});
  if (spec->leave_out) {
    writers.clear();
    writers.emplace_back("c0", "k2_c0");
  } else {
    switch (spec->topo) {
      case Topo::kPair:
      case Topo::kPaxos:
      case Topo::kPaxosF0:
        (void)c.tm("c0").SendWork(txn, "s1");
        break;
      case Topo::kChain:
        (void)c.tm("c0").SendWork(txn, "m1");
        break;
      case Topo::kStar:
        (void)c.tm("c0").SendWork(txn, "s1");
        (void)c.tm("c0").SendWork(txn, "r2");
        break;
    }
  }
  if (spec->abort_vote) c.node("s1").rm().FailNextPrepare();
  c.RunFor(sim::kSecond);

  Driver driver{c, nodes, config.recovery_delay, {}};
  auto commit = c.StartCommit("c0", txn);
  if (spec->gc) {
    // Background local commits on every node, overlapping the audited
    // transaction's commit window: concurrent force requests are what makes
    // the pipelined / daemon submit paths (and their crash windows)
    // reachable — a single transaction's forces never queue behind each
    // other on one node. Keys are disjoint from the audited writers'.
    for (const std::string& n : nodes) {
      for (int i = 0; i < 3; ++i) {
        // Each event issues two back-to-back commits: whatever the protocol
        // timing, the second force lands while the first flush is still in
        // flight on the 2ms device.
        c.ctx().events().ScheduleAfter((2 + 3 * i) * sim::kMillisecond,
                                       [&c, n, i] {
          for (int j = 0; j < 2; ++j) {
            // Re-check per iteration: Commit below can synchronously hit a
            // TM/RM crash point and take the node down mid-loop.
            if (!c.tm(n).IsUp()) return;
            const uint64_t bg = c.tm(n).Begin();
            c.tm(n).Write(bg, 0,
                          StringPrintf("bg_%s_%d_%d", n.c_str(), i, j), "v",
                          [](Status) {});
            c.tm(n).Commit(bg, [](tm::CommitResult) {});
          }
        });
      }
    }
  }
  if (config.flap) {
    const auto& [a, b] = links.front();
    failures.ScheduleLinkFlap(a, b, c.ctx().now() + 3 * sim::kMillisecond,
                              c.ctx().now() + 9 * sim::kSecond);
  }

  // --- drive to quiescence --------------------------------------------------
  int settle = -1;
  for (int i = 0; i < 90; ++i) {
    driver.Slice(sim::kSecond);
    if (i == 30) {
      // Session-break pass: a participant still *active* this deep in has
      // lost its conversation (the work source crashed before ever sending
      // Prepare). LU 6.2 surfaces that as a session failure; the TM aborts.
      for (const std::string& n : nodes) {
        if (!c.tm(n).IsUp()) continue;
        if (c.tm(n).View(txn).outcome == tm::Outcome::kActive)
          c.tm(n).AbortTxn(txn);
      }
    }
    if (settle < 0 && i > 31 && commit->completed && driver.AllUp() &&
        !driver.restart_pending["c0"]) {
      settle = i;
    }
    if (settle >= 0 && i >= settle + 10) break;
  }

  // Record what fired before the oracle's own crash/restart rounds.
  if (!config.crash_node.empty()) {
    const int epochs = failures.node_epoch(config.crash_node);
    const int expected =
        config.epoch == sim::FailureInjector::kAnyEpoch ? 1 : config.epoch + 1;
    result.crash_fired = epochs >= expected;
    result.crash2_fired = !config.crash2_point.empty() && epochs >= 2;
  }

  // --- oracle ---------------------------------------------------------------
  // Quiesce the fault model before judging: transient faults end, and the
  // oracle asks what state the system converges to afterwards. Leaving loss
  // active would make the idempotency rounds probabilistic (each round draws
  // fresh loss decisions for its recovery traffic), turning lucky/unlucky
  // drops into false "recovery diverged" verdicts.
  failures.DisarmAll();
  if (config.loss_rate > 0.0 || config.flap) {
    for (const auto& [a, b] : links) {
      c.network().SetLinkLossRate(a, b, 0.0);
      c.network().SetLinkDown(a, b, false);
    }
    // Two recovery-retry intervals over the now-reliable links, so inquiries
    // and decisions that kept getting dropped can finally land.
    for (int i = 0; i < 15; ++i) driver.Slice(sim::kSecond);
  }
  for (int i = 0; i < 10 && !driver.AllUp(); ++i) driver.Slice(sim::kSecond);
  if (!driver.AllUp()) {
    violation("node never restarted");
    return result;
  }
  if (config.before_oracle) config.before_oracle(c);

  const TxnAudit audit = c.Audit(txn);
  result.committed = tm::CommittedEffects(c.tm("c0").View(txn).outcome);

  if (audit.any_in_doubt) {
    // The only legitimate permanent in-doubt: basic 2PC lost a coordinator
    // (root, or a cascaded relay) before its subtree's decision was durable.
    // With no record the recovered coordinator must answer inquiries
    // "unknown" — no-record could equally mean committed-and-truncated — so
    // its subordinates block: the weakness the presumption protocols were
    // invented to remove.
    const bool crashed_coordinator =
        config.crash_node == "c0" ||
        (spec->topo == Topo::kChain && config.crash_node == "m1");
    if (spec->protocol == ProtocolKind::kBasic2PC && crashed_coordinator &&
        result.crash_fired) {
      result.blocked = true;
    } else {
      violation("participant left in doubt after full recovery");
    }
  }

  if (audit.damage_ground_truth) {
    size_t reported = 0;
    c.ctx().trace().ForEach(
        [](const sim::TraceEntry& e) {
          return e.kind == sim::TraceKind::kHeuristic &&
                 e.detail.find("damage") != std::string::npos;
        },
        [&reported](const sim::TraceEntry&) { ++reported; });
    if (reported == 0)
      violation("heuristic damage occurred but was never reported");
  } else if (!audit.consistent && !audit.any_in_doubt) {
    violation("participants diverged without heuristic damage");
  }

  // Data effects must match each node's recorded outcome.
  if (!audit.any_in_doubt) {
    for (const auto& [n, key] : writers) {
      const tm::Outcome o = c.tm(n).View(txn).outcome;
      const Result<std::string> value = c.node(n).rm().Peek(key);
      if (tm::CommittedEffects(o)) {
        if (!value.ok() || value.value() != "v")
          violation("node " + n + " recorded commit but lost " + key);
      } else if (o == tm::Outcome::kAborted ||
                 o == tm::Outcome::kHeuristicAborted) {
        if (value.ok())
          violation("node " + n + " recorded abort but kept " + key);
      }
    }
    for (const std::string& n : nodes) {
      Node& node = c.node(n);
      for (size_t i = 0; i < node.rm_count(); ++i) {
        if (node.rm(i).locks().HeldLockCount() != 0)
          violation("node " + n + " leaked locks after resolution");
      }
    }
  }

  // Accounting: the trace and the network counters describe one reality.
  {
    const net::NetworkStats& stats = c.network().stats();
    const size_t sends = c.ctx().trace().Count(sim::TraceKind::kSend);
    const size_t recvs = c.ctx().trace().Count(sim::TraceKind::kReceive);
    if (sends != stats.messages_sent)
      violation(StringPrintf("trace records %zu sends, network counted %llu",
                             sends,
                             static_cast<unsigned long long>(
                                 stats.messages_sent)));
    if (recvs != stats.messages_delivered)
      violation(StringPrintf(
          "trace records %zu deliveries, network counted %llu", recvs,
          static_cast<unsigned long long>(stats.messages_delivered)));
    if (stats.messages_delivered + stats.messages_dropped >
        stats.messages_sent)
      violation("delivered + dropped exceeds accepted sends");
  }

  // Recovery idempotency: crash+restart everything at quiescence, twice.
  // Round 2 must reproduce round 1's durable-state projection exactly; and
  // if nothing was left in doubt, the projection must match the pre-crash
  // state (no committed effect may depend on volatile state).
  auto snapshot_all = [&c, &nodes, txn] {
    std::string s;
    for (const std::string& n : nodes) s += SnapshotNode(c, n, txn);
    return s;
  };
  const std::string snap1 = snapshot_all();
  std::string snaps[2];
  for (int round = 1; round <= 2; ++round) {
    for (const std::string& n : nodes)
      if (c.tm(n).IsUp()) failures.CrashNow(n);
    for (const std::string& n : nodes)
      if (!c.tm(n).IsUp()) failures.RestartNow(n);
    for (int i = 0; i < 20; ++i) driver.Slice(sim::kSecond);
    if (!driver.AllUp()) {
      violation("node never came back during idempotency pass");
      return result;
    }
    if (config.on_idempotency_round) config.on_idempotency_round(c, round);
    snaps[round - 1] = snapshot_all();
  }
  if (snaps[0] != snaps[1])
    violation("recovery is not idempotent: second restart diverged");
  if (!audit.any_in_doubt && snap1 != snaps[0])
    violation("restart at quiescence changed durable state");

  // --- reached-point inventory ---------------------------------------------
  for (const std::string& n : nodes) {
    for (size_t i = 0; i < tm::kCrashPointCount; ++i) {
      const uint64_t h = failures.hits(n, tm::kCrashPointNames[i]);
      if (h > 0) result.reached.push_back({n, tm::kCrashPointNames[i], h});
    }
    for (size_t i = 0; i < tm::kRmCrashPointCount; ++i) {
      const uint64_t h = failures.hits(n, tm::kRmCrashPoints[i]);
      if (h > 0) result.reached.push_back({n, tm::kRmCrashPoints[i], h});
    }
    for (size_t i = 0; i < wal::kWalCrashPointCount; ++i) {
      const uint64_t h = failures.hits(n, wal::kWalCrashPoints[i]);
      if (h > 0) result.reached.push_back({n, wal::kWalCrashPoints[i], h});
    }
  }
  return result;
}

}  // namespace tpc::harness
