#include "harness/live_cluster.h"

#include <filesystem>
#include <future>
#include <utility>

#include "util/format.h"
#include "util/logging.h"

namespace tpc::harness {

LiveNode::LiveNode(runtime::LiveNodeRuntime* nrt,
                   runtime::LiveTransport* transport, std::string name,
                   const LiveNodeOptions& options,
                   const LiveClusterOptions& cluster_options)
    : name_(std::move(name)), nrt_(nrt) {
  // Bind before the TM constructor registers the endpoint: the transport
  // needs to know which mailbox delivers to this name.
  transport->Bind(name_, nrt_);

  wal::FileStorageOptions file_options;
  file_options.sync = cluster_options.file_sync;
  file_options.floor_us = cluster_options.log_force_floor_us;
  runtime::LiveNodeRuntime* mailbox = nrt_;
  storage_ = std::make_unique<wal::FileStorage>(
      cluster_options.dir + "/" + name_ + ".log",
      [mailbox](wal::StorageBackend::WriteCallback&& done) {
        mailbox->Post(
            runtime::Task([cb = std::move(done)]() mutable { cb(); }));
      },
      file_options);
  log_ = std::make_unique<wal::LogManager>(nrt_, &ctx_, name_,
                                           storage_.get());
  log_->set_group_commit(options.group_commit);

  for (size_t i = 0; i < options.num_rms; ++i) {
    rms_.push_back(std::make_unique<rm::KVResourceManager>(
        nrt_, &ctx_, StringPrintf("%s.rm%zu", name_.c_str(), i), log_.get(),
        options.rm_options));
  }
  tm_ = std::make_unique<tm::TransactionManager>(nrt_, &ctx_, transport,
                                                 log_.get(), name_,
                                                 options.tm);
  for (auto& rm : rms_) tm_->AttachRm(rm.get());
}

LiveCluster::LiveCluster(LiveClusterOptions options)
    : options_(std::move(options)),
      runtime_(runtime::LiveOptions{options_.worker_threads,
                                    options_.timer_tick_us}) {
  TPC_CHECK(!options_.dir.empty());
  std::filesystem::create_directories(options_.dir);
}

LiveCluster::~LiveCluster() {
  Stop();  // joins workers before any node is destroyed
}

LiveNode& LiveCluster::AddNode(const std::string& name,
                               const LiveNodeOptions& options) {
  TPC_CHECK(!started_);
  TPC_CHECK(nodes_.find(name) == nodes_.end());
  runtime::LiveNodeRuntime* nrt = runtime_.AddNode(name);
  auto n =
      std::make_unique<LiveNode>(nrt, &transport_, name, options, options_);
  LiveNode* raw = n.get();
  nodes_.emplace(name, std::move(n));
  return *raw;
}

void LiveCluster::Connect(const std::string& a, const std::string& b,
                          tm::SessionOptions a_options,
                          tm::SessionOptions b_options) {
  TPC_CHECK(!started_);
  node(a).tm().Connect(b, a_options);
  node(b).tm().Connect(a, b_options);
}

void LiveCluster::Start() {
  TPC_CHECK(!started_);
  started_ = true;
  runtime_.Start();
}

void LiveCluster::Stop() {
  if (!started_) return;
  runtime_.WaitIdle();
  runtime_.Stop();
  started_ = false;
}

LiveNode& LiveCluster::node(const std::string& name) {
  auto it = nodes_.find(name);
  TPC_CHECK(it != nodes_.end());
  return *it->second;
}

void LiveCluster::RunOn(const std::string& name,
                        const std::function<void()>& fn) {
  std::promise<void> done;
  node(name).node_runtime()->Post(runtime::Task([&fn, &done] {
    fn();
    done.set_value();
  }));
  done.get_future().wait();
}

void LiveCluster::Post(const std::string& name, std::function<void()> fn) {
  node(name).node_runtime()->Post(runtime::Task(std::move(fn)));
}

}  // namespace tpc::harness
