// A small scenario-script language for driving the simulator from text
// files — protocol experiments without writing C++. Used by the `tpcsim`
// command-line tool (tools/tpcsim.cc) and by tests; sample scripts live in
// scenarios/.
//
// One command per line; '#' starts a comment. Durations accept us/ms/s.
//
//   node <name> [protocol=pa|pn|pc|basic] [reliable] [ok_to_leave_out]
//               [shared_log_with=<host>] [read_only_opt=off] [last_agent]
//               [vote_reliable] [include_idle] [leave_out]
//               [heuristic=commit:<dur>|abort:<dur>] [nonblocking]
//   connect <a> <b> [long_locks] [candidate]     # options on a's side
//   latency <a> <b> <dur>
//   handler <node> write                         # write a key on app data
//   begin <txn> <node>
//   write <node> <txn> <key> <value>
//   work <txn> <from> <to> [payload]
//   commit <txn> <node>                          # asynchronous
//   commit-wait <txn> <node>                     # drive until completion
//   abort <txn> <node>
//   unsolicited <txn> <node>
//   run <dur>
//   crash-at <node> <point> [occurrence]
//   crash <node>
//   restart <node>
//   partition <a> <b>   |   heal <a> <b>
//   checkpoint <node>
//   expect <txn> committed|aborted|pending|damage|no-damage|incomplete
//   expect-view <node> <txn> <outcome-name>   # e.g. committed, in-doubt
//   expect-damage-at <node> <txn>
//   expect-key <node> <key> <value>|absent
//   expect-flows <txn> <n>                       # cluster-total flows
//   expect-forced <txn> <n>                      # cluster-total forced
//   costs <txn>
//   diagram <txn> <node> [<node> ...]
//   trace <txn>

#ifndef TPC_HARNESS_SCENARIO_SCRIPT_H_
#define TPC_HARNESS_SCENARIO_SCRIPT_H_

#include <string>

#include "util/result.h"

namespace tpc::harness {

/// Outcome of one script run.
struct ScriptReport {
  int commands = 0;      ///< commands executed
  int expect_failed = 0; ///< expect-* commands that did not hold
  std::string output;    ///< printed output (diagrams, costs, failures)
};

/// Parses and executes `script`. Returns InvalidArgument on syntax errors
/// (with line information); expectation failures are reported in the
/// ScriptReport, not as errors.
Result<ScriptReport> RunScenarioScript(const std::string& script);

}  // namespace tpc::harness

#endif  // TPC_HARNESS_SCENARIO_SCRIPT_H_
