#include "harness/workload.h"

#include <algorithm>
#include <set>
#include <vector>

#include "util/format.h"
#include "util/logging.h"

namespace tpc::harness {
namespace {

std::string ServerName(size_t i) {
  return "s" + std::to_string(i);
}

}  // namespace

double WorkloadStats::Throughput() const {
  if (elapsed <= 0) return 0;
  return static_cast<double>(committed + aborted) /
         (static_cast<double>(elapsed) / sim::kSecond);
}

std::string WorkloadStats::ToString() const {
  return StringPrintf(
      "%llu committed, %llu aborted, %llu incomplete; "
      "throughput %.1f txn/s; latency mean %.1fms p99 %.1fms; "
      "%llu flows, %llu log writes (%llu forced)",
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(aborted),
      static_cast<unsigned long long>(incomplete), Throughput(),
      commit_latency.Mean() / sim::kMillisecond,
      commit_latency.Percentile(99) / sim::kMillisecond,
      static_cast<unsigned long long>(flows),
      static_cast<unsigned long long>(log_writes),
      static_cast<unsigned long long>(forced));
}

void Workload::BuildStandardCluster(Cluster* cluster,
                                    const WorkloadOptions& options,
                                    const NodeOptions& node_options) {
  cluster->AddNode("coord", node_options);
  for (size_t i = 0; i < options.servers; ++i) {
    const std::string name = ServerName(i);
    cluster->AddNode(name, node_options);
    cluster->Connect("coord", name);
    // Payload protocol: "w:<key>" writes, "r:<key>" reads.
    cluster->tm(name).SetAppDataHandler(
        [cluster, name](uint64_t txn, const net::NodeId&,
                        std::string_view op) {
          if (op.size() < 2) return;
          const std::string_view key = op.substr(2);
          if (op[0] == 'w') {
            cluster->tm(name).Write(txn, 0, key, std::to_string(txn),
                                    [](Status) { /* may lose a lock race */ });
          } else {
            cluster->tm(name).Read(txn, 0, key, [](Result<std::string>) {});
          }
        });
  }
  cluster->network().set_tracing(false);
}

Workload::Workload(Cluster* cluster, WorkloadOptions options)
    : cluster_(cluster), options_(options), rng_(options.seed) {}

WorkloadStats Workload::Run() {
  WorkloadStats stats;
  const sim::Time start = cluster_->ctx().now();
  std::vector<std::pair<uint64_t, std::shared_ptr<DrivenCommit>>> commits;

  for (uint64_t i = 0; i < options_.transactions; ++i) {
    const bool read_only = rng_.Bernoulli(options_.read_only_fraction);
    uint64_t txn = cluster_->tm("coord").Begin();

    // Pick distinct participants.
    uint64_t fanout = rng_.UniformRange(
        options_.min_participants,
        std::min<uint64_t>(options_.max_participants, options_.servers));
    std::set<size_t> picked;
    while (picked.size() < fanout)
      picked.insert(static_cast<size_t>(rng_.Uniform(options_.servers)));

    for (size_t server : picked) {
      std::string key;
      if (!read_only && rng_.Bernoulli(options_.hot_key_fraction)) {
        key = "hot";
      } else {
        key = "k" + std::to_string(rng_.Uniform(options_.keys));
      }
      const std::string op = (read_only ? "r:" : "w:") + key;
      TPC_CHECK(cluster_->tm("coord").SendWork(txn, ServerName(server), op).ok());
    }
    if (!read_only) {
      cluster_->tm("coord").Write(txn, 0, "local" + std::to_string(txn), "v",
                                  [](Status) {});
    }
    cluster_->RunFor(options_.think_time);
    commits.emplace_back(txn, cluster_->StartCommit("coord", txn));

    // Closed loop: wait for this transaction before starting the next.
    const sim::Time deadline = cluster_->ctx().now() + options_.deadline;
    while (!commits.back().second->completed &&
           cluster_->ctx().now() < deadline) {
      if (!cluster_->ctx().events().Step()) break;
    }
  }
  // Drain any stragglers, but stop the clock as soon as everything is done
  // so throughput reflects the stream, not the wait budget.
  const sim::Time tail_deadline = cluster_->ctx().now() + options_.deadline;
  auto all_done = [&commits] {
    for (const auto& [txn, commit] : commits)
      if (!commit->completed) return false;
    return true;
  };
  while (!all_done() && cluster_->ctx().now() < tail_deadline) {
    if (!cluster_->ctx().events().Step()) break;
  }

  for (const auto& [txn, commit] : commits) {
    if (!commit->completed) {
      ++stats.incomplete;
      continue;
    }
    if (tm::CommittedEffects(commit->result.outcome)) {
      ++stats.committed;
    } else {
      ++stats.aborted;
    }
    stats.commit_latency.Add(static_cast<double>(commit->latency));
    tm::TxnCost cost = cluster_->TotalCost(txn);
    stats.flows += cost.flows_sent;
    stats.log_writes += cost.tm_log_writes;
    stats.forced += cost.tm_log_forced;
  }
  stats.elapsed = cluster_->ctx().now() - start;
  return stats;
}

}  // namespace tpc::harness
