#include "harness/cluster_workload.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/format.h"
#include "util/logging.h"
#include "util/random.h"

namespace tpc::harness {
namespace {

// Work payloads are "w<key>|<t1>,<t2>,..." (decimal server indices in
// ascending order); acks upward are "a" (success) or "x" (a write failed in
// the subtree).
constexpr char kWorkTag = 'w';
constexpr std::string_view kAckOk = "a";
constexpr std::string_view kAckFailed = "x";

uint64_t ParseDecimal(std::string_view s, size_t* pos) {
  uint64_t value = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(s[*pos] - '0');
    ++*pos;
  }
  return value;
}

/// One precomputed transaction: which leaves it touches and which hot key
/// it writes there.
struct TxnPlan {
  std::vector<uint32_t> targets;  // unique, ascending
  uint64_t key = 0;
};

/// A server's bookkeeping for one in-flight transaction: how many local or
/// forwarded completions are outstanding before it can ack its requester.
struct PendingWork {
  net::NodeId requester;
  size_t outstanding = 0;
  bool failed = false;
};

struct RunState {
  Cluster* cluster = nullptr;
  Topology topo;
  ClusterWorkloadOptions options;

  // Resolved once up front: per-event name->node map lookups are the kind
  // of avoidable per-message cost this workload exists to measure.
  std::vector<tm::TransactionManager*> server_tm;
  std::vector<tm::TransactionManager*> coord_tm;

  std::vector<std::vector<TxnPlan>> plans;  // per coordinator, issue order
  std::vector<size_t> next_plan;
  std::vector<uint64_t> inflight_txn;   // per coordinator (0 = none)
  std::vector<sim::Time> inflight_start;

  std::vector<std::unordered_map<uint64_t, PendingWork>> pending;  // per server

  ClusterWorkloadStats stats;
  uint64_t finished = 0;  // commit callbacks fired + coordinator aborts
  double latency_sum_ms = 0.0;

  void StartNext(size_t coord);
  void OnServerData(uint32_t server, uint64_t txn, const net::NodeId& from,
                    std::string_view data);
  void OnCoordinatorAck(size_t coord, uint64_t txn, std::string_view data);
  void FinishOne(uint32_t server, uint64_t txn);
};

std::string WorkPayload(uint64_t key, const uint32_t* targets, size_t count) {
  std::string payload;
  payload.push_back(kWorkTag);
  StringAppendF(&payload, "%llu|", static_cast<unsigned long long>(key));
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) payload.push_back(',');
    StringAppendF(&payload, "%u", targets[i]);
  }
  return payload;
}

void RunState::StartNext(size_t coord) {
  if (next_plan[coord] >= plans[coord].size()) return;
  const TxnPlan& plan = plans[coord][next_plan[coord]++];
  tm::TransactionManager& ctm = *coord_tm[coord];
  const uint64_t txn = ctm.Begin();
  inflight_txn[coord] = txn;
  inflight_start[coord] = cluster->ctx().now();
  TPC_CHECK_OK(ctm.SendWork(
      txn, topo.servers[0],
      WorkPayload(plan.key, plan.targets.data(), plan.targets.size())));
}

void RunState::OnServerData(uint32_t server, uint64_t txn,
                            const net::NodeId& from, std::string_view data) {
  if (data.empty()) return;
  if (data[0] != kWorkTag) {
    // Ack from a child subtree.
    auto it = pending[server].find(txn);
    if (it == pending[server].end()) return;
    if (data == kAckFailed) it->second.failed = true;
    FinishOne(server, txn);
    return;
  }

  size_t pos = 1;
  const uint64_t key = ParseDecimal(data, &pos);
  TPC_CHECK(pos < data.size() && data[pos] == '|');
  ++pos;

  // Split the targets: us, and one forward per child subtree that contains
  // any of them. std::map keeps the forwarding order ascending-by-child,
  // i.e. deterministic and name-lexicographic (server names sort by index).
  bool self_target = false;
  std::map<uint32_t, std::vector<uint32_t>> by_hop;
  while (pos < data.size()) {
    const uint32_t target = static_cast<uint32_t>(ParseDecimal(data, &pos));
    if (pos < data.size() && data[pos] == ',') ++pos;
    if (target == server) {
      self_target = true;
    } else {
      by_hop[topo.NextHop(server, target)].push_back(target);
    }
  }

  PendingWork& work = pending[server][txn];
  work.requester = from;
  work.outstanding = by_hop.size() + (self_target ? 1 : 0);
  work.failed = false;
  TPC_CHECK(work.outstanding > 0);

  tm::TransactionManager& stm = *server_tm[server];
  for (const auto& [hop, targets] : by_hop) {
    TPC_CHECK_OK(stm.SendWork(
        txn, topo.servers[hop],
        WorkPayload(key, targets.data(), targets.size())));
  }
  if (self_target) {
    stm.Write(txn, 0, StringPrintf("h%llu", (unsigned long long)key),
              StringPrintf("%llu", (unsigned long long)txn),
              [this, server, txn](Status st) {
      // A failed write (lock timeout breaking a cross-branch deadlock)
      // poisons the ack chain; the coordinator aborts the transaction.
      auto it = pending[server].find(txn);
      if (it == pending[server].end()) return;
      if (!st.ok()) it->second.failed = true;
      FinishOne(server, txn);
    });
  }
}

void RunState::FinishOne(uint32_t server, uint64_t txn) {
  auto it = pending[server].find(txn);
  TPC_CHECK(it != pending[server].end());
  TPC_CHECK(it->second.outstanding > 0);
  if (--it->second.outstanding > 0) return;
  const net::NodeId requester = it->second.requester;
  const bool failed = it->second.failed;
  pending[server].erase(it);
  TPC_CHECK_OK(
      server_tm[server]->SendWork(txn, requester, failed ? kAckFailed : kAckOk));
}

void RunState::OnCoordinatorAck(size_t coord, uint64_t txn,
                                std::string_view data) {
  if (inflight_txn[coord] != txn) return;  // stale (already resolved)
  inflight_txn[coord] = 0;
  tm::TransactionManager& ctm = *coord_tm[coord];
  if (data == kAckFailed) {
    ctm.AbortTxn(txn);
    ++stats.aborted;
    ++finished;
    StartNext(coord);
    return;
  }
  const sim::Time start = inflight_start[coord];
  ctm.Commit(txn, [this, coord, start](tm::CommitResult result) {
    if (tm::CommittedEffects(result.outcome)) {
      ++stats.committed;
    } else {
      ++stats.aborted;
    }
    latency_sum_ms += static_cast<double>(cluster->ctx().now() - start) /
                      static_cast<double>(sim::kMillisecond);
    ++finished;
    StartNext(coord);
  });
}

}  // namespace

double ClusterWorkloadStats::Throughput() const {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(committed + aborted) /
         (static_cast<double>(elapsed) / static_cast<double>(sim::kSecond));
}

ClusterWorkloadStats RunClusterWorkload(Cluster* cluster,
                                        const Topology& topology,
                                        const ClusterWorkloadOptions& options) {
  TPC_CHECK(!topology.servers.empty());
  const size_t coordinators = topology.coordinators.size();
  TPC_CHECK(coordinators > 0);

  auto state = std::make_shared<RunState>();
  state->cluster = cluster;
  state->topo = topology;
  state->options = options;
  state->plans.resize(coordinators);
  state->next_plan.assign(coordinators, 0);
  state->inflight_txn.assign(coordinators, 0);
  state->inflight_start.assign(coordinators, 0);
  state->pending.resize(topology.servers.size());
  for (const std::string& name : topology.servers)
    state->server_tm.push_back(&cluster->tm(name));
  for (const std::string& name : topology.coordinators)
    state->coord_tm.push_back(&cluster->tm(name));

  // Precompute every transaction's coordinator, targets, and key from one
  // seeded stream, before any event runs: execution interleaving cannot
  // perturb the plan, so a cell's trace depends only on (cluster seed,
  // plan seed, grid parameters).
  const std::vector<uint32_t>& leaves = topology.leaves;
  TPC_CHECK(!leaves.empty());
  Random plan_rng(options.plan_seed);
  for (uint64_t t = 0; t < options.transactions; ++t) {
    TxnPlan plan;
    plan.key = plan_rng.Skewed(options.hot_keys, options.key_theta);
    for (size_t j = 0; j < options.targets_per_txn; ++j) {
      const uint32_t leaf = leaves[plan_rng.Skewed(leaves.size(), options.theta)];
      auto it = std::lower_bound(plan.targets.begin(), plan.targets.end(), leaf);
      if (it == plan.targets.end() || *it != leaf) plan.targets.insert(it, leaf);
    }
    state->plans[t % coordinators].push_back(std::move(plan));
  }

  // Server handlers route work down and acks up; coordinator handlers turn
  // the root's ack into Commit/AbortTxn. Handlers hold the shared state
  // alive, so stray late events after this function returns stay safe.
  for (uint32_t i = 0; i < topology.servers.size(); ++i) {
    cluster->tm(topology.servers[i])
        .SetAppDataHandler([state, i](uint64_t txn, const net::NodeId& from,
                                      std::string_view data) {
          state->OnServerData(i, txn, from, data);
        });
  }
  for (size_t c = 0; c < coordinators; ++c) {
    cluster->tm(topology.coordinators[c])
        .SetAppDataHandler([state, c](uint64_t txn, const net::NodeId&,
                                      std::string_view data) {
          state->OnCoordinatorAck(c, txn, data);
        });
  }

  sim::SimContext& ctx = cluster->ctx();
  const sim::Time start_time = ctx.now();
  const sim::Time deadline = start_time + options.deadline;
  const uint64_t events_before = ctx.events().executed();
  const uint64_t flows_before = cluster->network().stats().messages_sent;

  for (size_t c = 0; c < coordinators; ++c) state->StartNext(c);
  while (state->finished < options.transactions && ctx.now() <= deadline) {
    if (!ctx.events().Step()) break;
  }

  state->stats.incomplete = options.transactions - state->finished;
  state->stats.flows =
      cluster->network().stats().messages_sent - flows_before;
  state->stats.events = ctx.events().executed() - events_before;
  state->stats.elapsed = ctx.now() - start_time;
  const uint64_t completed = state->stats.committed + state->stats.aborted;
  if (completed > 0)
    state->stats.mean_commit_latency_ms =
        state->latency_sum_ms / static_cast<double>(completed);
  return state->stats;
}

}  // namespace tpc::harness
