// Cluster-scale workload: C coordinators run closed-loop transaction
// streams concurrently over one shared server tree. Each transaction
// Zipf-picks a set of target leaves and a hot key, then routes its work
// down the tree hop by hop (payloads carry the remaining targets, and each
// server forwards to the child subtree that contains them). Commit trees
// therefore overlap — at the root by construction, at interior servers
// whenever target sets share a branch, and on RM locks whenever two
// transactions pick the same (leaf, key) — which is what makes coordinator
// count and skew (theta) real contention knobs rather than labels.
//
// Determinism: the entire plan (per-transaction coordinator, targets, key)
// is precomputed from one seeded Random before any event runs, so the
// simulation's trace depends only on (cluster seed, plan). Coordinator
// count or issue order cannot perturb the plan stream.

#ifndef TPC_HARNESS_CLUSTER_WORKLOAD_H_
#define TPC_HARNESS_CLUSTER_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "harness/cluster.h"

namespace tpc::harness {

/// Shape of the multi-coordinator stream.
struct ClusterWorkloadOptions {
  /// Seed for the precomputed plan (independent of the cluster seed).
  uint64_t plan_seed = 7;
  /// Total transactions, dealt round-robin across the coordinators.
  uint64_t transactions = 64;
  /// Zipf-skewed leaf picks per transaction (duplicates collapse, so hot
  /// leaves also shrink the effective fan-out — as hot data does).
  size_t targets_per_txn = 3;
  /// Leaf-pick skew in [0,1); 0 = uniform.
  double theta = 0.5;
  /// Per-leaf hot-key space; each transaction writes one Zipf-picked key
  /// at every target, so key collisions are lock conflicts.
  uint64_t hot_keys = 64;
  double key_theta = 0.5;
  /// Simulated-time budget for the whole stream. Commit is gated on
  /// application-level acks (a node acks its requester once its own write
  /// and every forwarded subtree completed), so phase one never races a
  /// queued lock wait; cross-transaction deadlocks resolve via the RM lock
  /// timeout, which surfaces as a failed ack and a coordinator abort.
  sim::Time deadline = 10 * 60 * sim::kSecond;
};

/// Aggregate results (all counters are cluster-wide totals).
struct ClusterWorkloadStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t incomplete = 0;  ///< commit callback never fired before deadline
  uint64_t flows = 0;       ///< protocol messages across all transactions
  uint64_t events = 0;      ///< simulator events executed during the run
  sim::Time elapsed = 0;    ///< simulated duration of the stream
  double mean_commit_latency_ms = 0.0;  ///< completed transactions only

  /// Simulated committed+aborted transactions per simulated second.
  double Throughput() const;
};

/// Runs the stream against a topology previously built into `cluster` (the
/// handlers it installs assume BuildTopology's naming and wiring).
ClusterWorkloadStats RunClusterWorkload(Cluster* cluster,
                                        const Topology& topology,
                                        const ClusterWorkloadOptions& options);

}  // namespace tpc::harness

#endif  // TPC_HARNESS_CLUSTER_WORKLOAD_H_
