// Scenario builders that reproduce the paper's experimental configurations.
// The table/figure benches and the accounting property tests both drive
// these, so the numbers printed by the benches are the numbers the tests
// verify.

#ifndef TPC_HARNESS_SCENARIOS_H_
#define TPC_HARNESS_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "harness/cluster.h"

namespace tpc::harness {

/// Outcome + cluster-total cost of one driven scenario.
struct ScenarioResult {
  bool completed = false;
  tm::CommitResult result;
  analysis::CostTriplet measured;  ///< cluster totals (TM records only)
  sim::Time commit_latency = 0;
};

/// Runs the Table 3 configuration: a coordinator with n-1 members, m of
/// which use `variant`'s optimization, and measures one transaction.
ScenarioResult RunTable3Scenario(analysis::Table3Variant variant, uint64_t n,
                                 uint64_t m);

/// One measured Table 2 row (two-participant transaction, per-role costs).
struct MeasuredTable2Row {
  std::string label;
  analysis::RoleCost coordinator;
  analysis::RoleCost subordinate;
};

/// Runs every Table 2 configuration and reports the measured per-role
/// costs, in the same order as analysis::Table2Expected().
std::vector<MeasuredTable2Row> RunTable2Scenarios();

/// Runs the Table 4 configuration: r successive two-member transactions
/// under `variant`, returning cluster-total costs across all r.
analysis::CostTriplet RunTable4Scenario(analysis::Table4Variant variant,
                                        uint64_t r);

/// Renders the message-flow / log-write time sequence reproducing one of
/// the paper's figures (1-8), with a short verification footer.
std::string RunFigureScenario(int figure);

}  // namespace tpc::harness

#endif  // TPC_HARNESS_SCENARIOS_H_
