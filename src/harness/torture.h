// Crash-recovery torture campaign: one *cell* = one deterministic simulation
// of a fixed scenario (protocol config + topology + workload) with a fixed
// fault schedule (a crash point armed at a given occurrence/epoch, optional
// per-link message loss, an optional link flap). After driving the cell to
// quiescence — restarting every crashed node after a recovery delay — an
// oracle checks the invariants 2PC exists to provide:
//
//   1. Atomicity: every participant with recorded effects agrees with the
//      decision owner's outcome — or the disagreement is a *reported*
//      heuristic-damage event in the trace (unreported damage is a bug).
//   2. Liveness: no transaction stays in doubt forever, except the
//      documented basic-2PC blocking window (coordinator crashed before its
//      decision was durable and holds the only copy — the paper's argument
//      for presumption; the cell reports it as `blocked`, not a violation).
//   3. Lock hygiene: once resolved everywhere, no RM holds a lock.
//   4. Recovery idempotency: crash+restart of every node at quiescence
//      reaches a fixed point — a second crash+restart round reproduces
//      byte-identical RM stores and in-doubt sets.
//   5. Accounting: network counters and the trace agree (every accepted
//      flow is traced, delivered + dropped never exceeds sent).
//
// Every cell is reproducible from a single line (TortureConfig::Repro /
// ParseRepro); violations embed it so a failing campaign run can be replayed
// with TORTURE_REPRO=<line> tests/torture_test.

#ifndef TPC_HARNESS_TORTURE_H_
#define TPC_HARNESS_TORTURE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/failure_injector.h"
#include "sim/sim_context.h"

namespace tpc::harness {

class Cluster;

/// One torture cell's full fault schedule. Default-constructed = fault-free.
struct TortureConfig {
  /// Scenario name (see TortureScenarios()): protocol config + topology +
  /// workload, e.g. "pa_chain".
  std::string scenario = "pa_pair";
  uint64_t seed = 1;

  // --- crash schedule -------------------------------------------------------
  std::string crash_node;   ///< empty: no crash armed
  std::string crash_point;  ///< role-qualified name (tm/crash_points.h)
  int occurrence = 1;       ///< 1-based hit count within the epoch
  int epoch = sim::FailureInjector::kAnyEpoch;
  /// Second crash of the same node, armed for its post-recovery epoch
  /// (double-failure schedules). Empty: none.
  std::string crash2_point;
  /// Crashed nodes restart this long after going down.
  sim::Time recovery_delay = 2 * sim::kSecond;

  // --- network faults -------------------------------------------------------
  double loss_rate = 0.0;  ///< applied to every link, both directions
  bool flap = false;       ///< one scheduled outage of the root's first link

  // --- broken-fixture hooks (never part of the repro line) ------------------
  // The oracle's own tests sabotage otherwise-healthy cells through these to
  // prove each failure mode is actually caught.

  /// Runs right after cluster construction, before any workload; fixtures
  /// schedule future sabotage (e.g. a permanent link cut) from here.
  std::function<void(Cluster&)> after_build;
  /// Runs at quiescence, right before the oracle audits.
  std::function<void(Cluster&)> before_oracle;
  /// Runs after each oracle crash+restart round (round = 1, 2), before that
  /// round's durable-state snapshot.
  std::function<void(Cluster&, int round)> on_idempotency_round;

  /// Single-line repro: `scenario=pa_pair seed=3 crash=s1@sub.x occ=1 ...`.
  std::string Repro() const;
};

/// Parses a Repro() line (whitespace-separated key=value tokens). Returns
/// false on malformed input.
bool ParseRepro(const std::string& line, TortureConfig* out);

/// A (node, crash point) pair reached during a cell, with its hit count —
/// the campaign uses these to enumerate new cells until no unseen point
/// remains.
struct ReachedPoint {
  std::string node;
  std::string point;
  uint64_t hits = 0;
};

/// Cell verdict.
struct TortureResult {
  /// The armed trigger actually fired (always false when none was armed).
  bool crash_fired = false;
  /// The epoch-1 double-crash trigger fired.
  bool crash2_fired = false;
  /// The decision owner's recorded outcome had committed effects.
  bool committed = false;
  /// Legitimate basic-2PC blocking was observed (documented weakness).
  bool blocked = false;
  /// Oracle violations; each line embeds the repro. Empty = cell passed.
  std::vector<std::string> violations;
  /// Every (node, point) reached, for campaign expansion.
  std::vector<ReachedPoint> reached;

  bool ok() const { return violations.empty(); }
};

/// Scenario metadata for campaign enumeration.
struct TortureScenario {
  const char* name;
  const char* protocol;  ///< "basic", "pa", "pn", "paxos", "1pc" (grouping)
  /// Participant node names (root first).
  std::vector<std::string> nodes;
};

/// All defined scenarios.
const std::vector<TortureScenario>& TortureScenarios();

/// Runs one cell to quiescence and applies the oracle.
TortureResult RunTortureCell(const TortureConfig& config);

}  // namespace tpc::harness

#endif  // TPC_HARNESS_TORTURE_H_
