#include "harness/scenario_script.h"

#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "harness/cluster.h"
#include "harness/sequence_diagram.h"
#include "util/format.h"

namespace tpc::harness {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

Result<sim::Time> ParseDuration(const std::string& text) {
  size_t suffix = 0;
  sim::Time unit = 0;
  if (text.size() > 2 && text.substr(text.size() - 2) == "us") {
    suffix = 2;
    unit = sim::kMicrosecond;
  } else if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
    suffix = 2;
    unit = sim::kMillisecond;
  } else if (text.size() > 1 && text.back() == 's') {
    suffix = 1;
    unit = sim::kSecond;
  } else {
    return Status::InvalidArgument("duration needs us/ms/s suffix: " + text);
  }
  errno = 0;
  char* end = nullptr;
  const std::string digits = text.substr(0, text.size() - suffix);
  double value = std::strtod(digits.c_str(), &end);
  if (end != digits.c_str() + digits.size() || value < 0)
    return Status::InvalidArgument("bad duration: " + text);
  return static_cast<sim::Time>(value * static_cast<double>(unit));
}

Result<tm::ProtocolKind> ParseProtocol(const std::string& text) {
  if (text == "pa") return tm::ProtocolKind::kPresumedAbort;
  if (text == "pn") return tm::ProtocolKind::kPresumedNothing;
  if (text == "pc") return tm::ProtocolKind::kPresumedCommit;
  if (text == "basic") return tm::ProtocolKind::kBasic2PC;
  return Status::InvalidArgument("unknown protocol: " + text);
}

class ScriptRunner {
 public:
  Result<ScriptReport> Run(const std::string& script) {
    std::istringstream in(script);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      std::vector<std::string> tokens = Tokenize(line);
      if (tokens.empty()) continue;
      Status st = Execute(tokens);
      if (!st.ok()) {
        return Status::InvalidArgument(
            StringPrintf("line %d: %s", line_number,
                         std::string(st.message()).c_str()));
      }
      ++report_.commands;
    }
    report_.output = out_;
    return std::move(report_);
  }

 private:
  Status Execute(const std::vector<std::string>& tokens) {
    const std::string& cmd = tokens[0];
    if (cmd == "node") return CmdNode(tokens);
    if (cmd == "connect") return CmdConnect(tokens);
    if (cmd == "latency") return CmdLatency(tokens);
    if (cmd == "handler") return CmdHandler(tokens);
    if (cmd == "begin") return CmdBegin(tokens);
    if (cmd == "write") return CmdWrite(tokens);
    if (cmd == "work") return CmdWork(tokens);
    if (cmd == "commit") return CmdCommit(tokens, /*wait=*/false);
    if (cmd == "commit-wait") return CmdCommit(tokens, /*wait=*/true);
    if (cmd == "abort") return CmdAbort(tokens);
    if (cmd == "unsolicited") return CmdUnsolicited(tokens);
    if (cmd == "run") return CmdRun(tokens);
    if (cmd == "crash-at") return CmdCrashAt(tokens);
    if (cmd == "crash") return CmdCrash(tokens);
    if (cmd == "restart") return CmdRestart(tokens);
    if (cmd == "partition") return CmdLink(tokens, /*down=*/true);
    if (cmd == "heal") return CmdLink(tokens, /*down=*/false);
    if (cmd == "checkpoint") return CmdCheckpoint(tokens);
    if (cmd == "expect") return CmdExpect(tokens);
    if (cmd == "expect-view") return CmdExpectView(tokens);
    if (cmd == "expect-damage-at") return CmdExpectDamageAt(tokens);
    if (cmd == "expect-key") return CmdExpectKey(tokens);
    if (cmd == "expect-flows") return CmdExpectCost(tokens, /*flows=*/true);
    if (cmd == "expect-forced") return CmdExpectCost(tokens, /*flows=*/false);
    if (cmd == "costs") return CmdCosts(tokens);
    if (cmd == "diagram") return CmdDiagram(tokens);
    if (cmd == "trace") return CmdTrace(tokens);
    return Status::InvalidArgument("unknown command: " + cmd);
  }

  Status Need(const std::vector<std::string>& tokens, size_t n) {
    if (tokens.size() < n)
      return Status::InvalidArgument(tokens[0] + ": missing arguments");
    return Status::OK();
  }

  Result<uint64_t> TxnOf(const std::string& name) {
    auto it = txns_.find(name);
    if (it == txns_.end())
      return Status::InvalidArgument("unknown transaction: " + name);
    return it->second;
  }

  Status CmdNode(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    NodeOptions options;
    for (size_t i = 2; i < tokens.size(); ++i) {
      const std::string& opt = tokens[i];
      if (opt.rfind("protocol=", 0) == 0) {
        TPC_ASSIGN_OR_RETURN(options.tm.protocol,
                             ParseProtocol(opt.substr(9)));
      } else if (opt == "reliable") {
        options.rm_options.reliable = true;
      } else if (opt == "ok_to_leave_out") {
        options.tm.ok_to_leave_out = true;
        options.rm_options.ok_to_leave_out = true;
      } else if (opt.rfind("shared_log_with=", 0) == 0) {
        options.shared_log_host = opt.substr(16);
      } else if (opt == "read_only_opt=off") {
        options.tm.read_only_opt = false;
      } else if (opt == "last_agent") {
        options.tm.last_agent_opt = true;
      } else if (opt == "vote_reliable") {
        options.tm.vote_reliable_opt = true;
      } else if (opt == "include_idle") {
        options.tm.include_idle_sessions = true;
      } else if (opt == "leave_out") {
        options.tm.leave_out_opt = true;
      } else if (opt == "nonblocking") {
        options.tm.wait_for_outcome_block = false;
      } else if (opt.rfind("heuristic=", 0) == 0) {
        std::string spec = opt.substr(10);
        size_t colon = spec.find(':');
        if (colon == std::string::npos)
          return Status::InvalidArgument("heuristic needs policy:delay");
        std::string policy = spec.substr(0, colon);
        if (policy == "commit") {
          options.tm.heuristic_policy = tm::HeuristicPolicy::kCommit;
        } else if (policy == "abort") {
          options.tm.heuristic_policy = tm::HeuristicPolicy::kAbort;
        } else {
          return Status::InvalidArgument("heuristic policy: commit|abort");
        }
        TPC_ASSIGN_OR_RETURN(options.tm.heuristic_delay,
                             ParseDuration(spec.substr(colon + 1)));
      } else {
        return Status::InvalidArgument("unknown node option: " + opt);
      }
    }
    cluster_.AddNode(tokens[1], options);
    return Status::OK();
  }

  Status CmdConnect(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    tm::SessionOptions a_side;
    for (size_t i = 3; i < tokens.size(); ++i) {
      if (tokens[i] == "long_locks") {
        a_side.long_locks = true;
      } else if (tokens[i] == "candidate") {
        a_side.last_agent_candidate = true;
      } else {
        return Status::InvalidArgument("unknown session option: " + tokens[i]);
      }
    }
    cluster_.Connect(tokens[1], tokens[2], a_side, {});
    return Status::OK();
  }

  Status CmdLatency(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 4));
    TPC_ASSIGN_OR_RETURN(sim::Time latency, ParseDuration(tokens[3]));
    cluster_.network().SetLinkLatency(tokens[1], tokens[2], latency);
    return Status::OK();
  }

  Status CmdHandler(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    if (tokens[2] != "write")
      return Status::InvalidArgument("only the 'write' handler exists");
    const std::string node = tokens[1];
    Cluster* cluster = &cluster_;
    cluster_.tm(node).SetAppDataHandler(
        [cluster, node](uint64_t txn, const net::NodeId&,
                        std::string_view) {
          cluster->tm(node).Write(txn, 0, node + "_key", "v", [](Status) {});
        });
    return Status::OK();
  }

  Status CmdBegin(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    txns_[tokens[1]] = cluster_.tm(tokens[2]).Begin();
    return Status::OK();
  }

  Status CmdWrite(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 5));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[2]));
    cluster_.tm(tokens[1]).Write(txn, 0, tokens[3], tokens[4], [](Status) {});
    return Status::OK();
  }

  Status CmdWork(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 4));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    std::string payload = tokens.size() > 4 ? tokens[4] : "";
    return cluster_.tm(tokens[2]).SendWork(txn, tokens[3], payload);
  }

  Status CmdCommit(const std::vector<std::string>& tokens, bool wait) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    if (wait) {
      auto result = cluster_.CommitAndWait(tokens[2], txn);
      commits_[tokens[1]] = std::make_shared<DrivenCommit>(result);
    } else {
      commits_[tokens[1]] = cluster_.StartCommit(tokens[2], txn);
    }
    return Status::OK();
  }

  Status CmdAbort(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    cluster_.tm(tokens[2]).AbortTxn(txn);
    return Status::OK();
  }

  Status CmdUnsolicited(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    cluster_.tm(tokens[2]).UnsolicitedPrepare(txn);
    return Status::OK();
  }

  Status CmdRun(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    TPC_ASSIGN_OR_RETURN(sim::Time duration, ParseDuration(tokens[1]));
    cluster_.RunFor(duration);
    return Status::OK();
  }

  Status CmdCrashAt(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    int occurrence = tokens.size() > 3 ? std::atoi(tokens[3].c_str()) : 1;
    cluster_.ctx().failures().ArmCrash(tokens[1], tokens[2], occurrence);
    return Status::OK();
  }

  Status CmdCrash(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    if (!cluster_.tm(tokens[1]).IsUp())
      return Status::FailedPrecondition(tokens[1] + " already down");
    cluster_.ctx().failures().CrashNow(tokens[1]);
    return Status::OK();
  }

  Status CmdRestart(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    if (cluster_.tm(tokens[1]).IsUp())
      return Status::FailedPrecondition(tokens[1] + " is up");
    cluster_.node(tokens[1]).Restart();
    return Status::OK();
  }

  Status CmdLink(const std::vector<std::string>& tokens, bool down) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    cluster_.network().SetLinkDown(tokens[1], tokens[2], down);
    return Status::OK();
  }

  Status CmdCheckpoint(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    return cluster_.node(tokens[1]).Checkpoint(nullptr);
  }

  void Fail(const std::string& what) {
    ++report_.expect_failed;
    out_ += "EXPECT FAILED: " + what + "\n";
  }

  Status CmdExpect(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    auto it = commits_.find(tokens[1]);
    if (it == commits_.end())
      return Status::InvalidArgument("no commit started for " + tokens[1]);
    const DrivenCommit& commit = *it->second;
    const std::string& want = tokens[2];
    if (want == "incomplete") {
      if (commit.completed) Fail(tokens[1] + " completed");
      return Status::OK();
    }
    if (!commit.completed) {
      Fail(tokens[1] + " did not complete");
      return Status::OK();
    }
    if (want == "committed") {
      if (!tm::CommittedEffects(commit.result.outcome))
        Fail(tokens[1] + " not committed");
    } else if (want == "aborted") {
      if (tm::CommittedEffects(commit.result.outcome))
        Fail(tokens[1] + " not aborted");
    } else if (want == "pending") {
      if (!commit.result.outcome_pending) Fail(tokens[1] + " not pending");
    } else if (want == "damage") {
      if (!commit.result.heuristic_damage)
        Fail(tokens[1] + " has no damage report");
    } else if (want == "no-damage") {
      if (commit.result.heuristic_damage)
        Fail(tokens[1] + " has a damage report");
    } else {
      return Status::InvalidArgument("unknown expectation: " + want);
    }
    return Status::OK();
  }

  Status CmdExpectView(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 4));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[2]));
    tm::Outcome outcome = cluster_.tm(tokens[1]).View(txn).outcome;
    std::string got(tm::OutcomeToString(outcome));
    if (got != tokens[3]) {
      Fail(tokens[1] + " views " + tokens[2] + " as '" + got + "', want '" +
           tokens[3] + "'");
    }
    return Status::OK();
  }

  Status CmdExpectDamageAt(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[2]));
    if (!cluster_.tm(tokens[1]).View(txn).damage_reported_here)
      Fail("no damage report at " + tokens[1] + " for " + tokens[2]);
    return Status::OK();
  }

  Status CmdExpectKey(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 4));
    auto value = cluster_.node(tokens[1]).rm().Peek(tokens[2]);
    if (tokens[3] == "absent") {
      if (value.ok())
        Fail(tokens[1] + ":" + tokens[2] + " present ('" + *value + "')");
    } else if (!value.ok()) {
      Fail(tokens[1] + ":" + tokens[2] + " absent");
    } else if (*value != tokens[3]) {
      Fail(tokens[1] + ":" + tokens[2] + " = '" + *value + "', want '" +
           tokens[3] + "'");
    }
    return Status::OK();
  }

  Status CmdExpectCost(const std::vector<std::string>& tokens, bool flows) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    tm::TxnCost cost = cluster_.TotalCost(txn);
    uint64_t got = flows ? cost.flows_sent : cost.tm_log_forced;
    uint64_t want = std::strtoull(tokens[2].c_str(), nullptr, 10);
    if (got != want) {
      Fail(StringPrintf("%s %s = %llu, want %llu", tokens[1].c_str(),
                        flows ? "flows" : "forced",
                        static_cast<unsigned long long>(got),
                        static_cast<unsigned long long>(want)));
    }
    return Status::OK();
  }

  Status CmdCosts(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    tm::TxnCost cost = cluster_.TotalCost(txn);
    StringAppendF(&out_, "%s: %llu flows, %llu log writes (%llu forced)\n",
                  tokens[1].c_str(),
                  static_cast<unsigned long long>(cost.flows_sent),
                  static_cast<unsigned long long>(cost.tm_log_writes),
                  static_cast<unsigned long long>(cost.tm_log_forced));
    return Status::OK();
  }

  Status CmdDiagram(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 3));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    std::vector<std::string> nodes(tokens.begin() + 2, tokens.end());
    out_ += RenderSequenceDiagram(cluster_.ctx().trace(), txn, nodes);
    return Status::OK();
  }

  Status CmdTrace(const std::vector<std::string>& tokens) {
    TPC_RETURN_IF_ERROR(Need(tokens, 2));
    TPC_ASSIGN_OR_RETURN(uint64_t txn, TxnOf(tokens[1]));
    out_ += cluster_.ctx().trace().Render(txn);
    return Status::OK();
  }

  Cluster cluster_;
  std::map<std::string, uint64_t> txns_;
  std::map<std::string, std::shared_ptr<DrivenCommit>> commits_;
  std::string out_;
  ScriptReport report_;
};

}  // namespace

Result<ScriptReport> RunScenarioScript(const std::string& script) {
  ScriptRunner runner;
  return runner.Run(script);
}

}  // namespace tpc::harness
