#include "harness/cluster.h"

#include <utility>

#include "util/format.h"
#include "util/logging.h"
#include "util/random.h"

namespace tpc::harness {

uint32_t Topology::NextHop(uint32_t node, uint32_t target) const {
  uint32_t hop = target;
  while (parent[hop] != node) {
    hop = parent[hop];
    TPC_CHECK(hop != kNoParent);  // target must descend from node
  }
  return hop;
}

Node::Node(sim::SimContext* ctx, net::Network* network, std::string name,
           const NodeOptions& options, wal::LogManager* host_log)
    : name_(std::move(name)) {
  if (host_log != nullptr) {
    log_ = host_log;
  } else {
    wal::DeviceOptions device;
    device.write_latency = options.log_force_latency;
    device.bandwidth_bytes_per_sec = options.log_bandwidth_bytes_per_sec;
    device.queue_depth = options.log_queue_depth;
    owned_log_ = std::make_unique<wal::LogManager>(ctx, name_, device);
    owned_log_->set_group_commit(options.group_commit);
    log_ = owned_log_.get();
  }
  for (size_t i = 0; i < options.num_rms; ++i) {
    rms_.push_back(std::make_unique<rm::KVResourceManager>(
        ctx, StringPrintf("%s.rm%zu", name_.c_str(), i), log_,
        options.rm_options));
  }
  tm::TmConfig tm_config = options.tm;
  tm_config.shared_log_with_host = host_log != nullptr;
  tm_ = std::make_unique<tm::TransactionManager>(ctx, network, log_, name_,
                                                 tm_config);
  for (auto& rm : rms_) {
    rm->EnableCrashPoints(name_);
    tm_->AttachRm(rm.get());
  }
}

void Node::Crash() {
  tm_->Crash();
  for (auto& rm : rms_) rm->Crash();
  if (owned_log_) owned_log_->Crash();
}

void Node::Restart() { tm_->Restart(); }

Status Node::Checkpoint(std::function<void()> done) {
  if (!owns_log())
    return Status::FailedPrecondition(name_ + " shares another node's log");
  if (tm_->ActiveTxnCount() > 0)
    return Status::FailedPrecondition(name_ + " has transactions in flight");
  for (auto& rm : rms_) {
    if (rm->ActiveCount() > 0)
      return Status::FailedPrecondition(rm->name() + " has live state");
  }
  // Snapshot every RM; when all snapshots are durable, truncate everything
  // before the first one.
  struct CheckpointState {
    size_t outstanding;
    wal::Lsn first_lsn = wal::kInvalidLsn;
    std::function<void()> done;
  };
  auto state = std::make_shared<CheckpointState>();
  state->outstanding = rms_.size();
  state->done = std::move(done);
  wal::LogManager* log = log_;
  if (rms_.empty()) {
    log->DiscardPrefix(log->durable_lsn());
    if (state->done) state->done();
    return Status::OK();
  }
  for (auto& rm : rms_) {
    Status st = rm->Checkpoint([state, log](wal::Lsn lsn) {
      if (lsn < state->first_lsn) state->first_lsn = lsn;
      if (--state->outstanding == 0) {
        log->DiscardPrefix(state->first_lsn);
        if (state->done) state->done();
      }
    });
    TPC_CHECK_OK(st);  // preconditions verified above
  }
  return Status::OK();
}

Cluster::Cluster(uint64_t seed) : ctx_(seed), network_(&ctx_) {
  // Scheduled link flaps (FailureInjector::ScheduleLinkFlap) drive the
  // network's partition state.
  ctx_.failures().SetLinkController(
      [this](const std::string& a, const std::string& b, bool down) {
        network_.SetLinkDown(a, b, down);
      });
}

Node& Cluster::AddNode(const std::string& name, const NodeOptions& options) {
  TPC_CHECK(nodes_.find(name) == nodes_.end());
  wal::LogManager* host_log = nullptr;
  if (!options.shared_log_host.empty()) {
    host_log = &node(options.shared_log_host).log();
  }
  auto n = std::make_unique<Node>(&ctx_, &network_, name, options, host_log);
  Node* raw = n.get();
  nodes_.emplace(name, std::move(n));
  ctx_.failures().RegisterNode(name, [raw] { raw->Crash(); },
                               [raw] { raw->Restart(); });
  return *raw;
}

void Cluster::Connect(const std::string& a, const std::string& b,
                      tm::SessionOptions a_options,
                      tm::SessionOptions b_options) {
  node(a).tm().Connect(b, a_options);
  node(b).tm().Connect(a, b_options);
}

Topology Cluster::BuildTopology(const TopologyOptions& options) {
  TPC_CHECK(options.servers >= 1);
  TPC_CHECK(options.coordinators >= 1);
  TPC_CHECK(options.shape == TopologyShape::kStar || options.fanout >= 1);
  Topology topo;

  // Fixed-width names keep lexicographic order equal to index order; the
  // TM iterates sessions by peer name, so this makes session order in a
  // generated cluster predictable from indices alone.
  topo.servers.reserve(options.servers);
  for (size_t i = 0; i < options.servers; ++i)
    topo.servers.push_back(StringPrintf("s%05zu", i));
  for (size_t c = 0; c < options.coordinators; ++c)
    topo.coordinators.push_back(StringPrintf("c%03zu", c));

  for (const std::string& name : topo.coordinators)
    AddNode(name, options.node_options);
  for (const std::string& name : topo.servers)
    AddNode(name, options.node_options);

  // Wire the servers into a tree.
  topo.parent.assign(options.servers, Topology::kNoParent);
  topo.children.resize(options.servers);
  Random wiring(options.wiring_seed);
  std::vector<uint32_t> open = {0};  // random-sparse: nodes with spare degree
  for (uint32_t i = 1; i < options.servers; ++i) {
    uint32_t parent = 0;
    switch (options.shape) {
      case TopologyShape::kTree:
        parent = (i - 1) / static_cast<uint32_t>(options.fanout);
        break;
      case TopologyShape::kStar:
        parent = 0;
        break;
      case TopologyShape::kRandomSparse: {
        // Pick uniformly among already-placed nodes that still have spare
        // degree; a fresh node opens once it is placed.
        const size_t pick = wiring.Uniform(open.size());
        parent = open[pick];
        if (topo.children[parent].size() + 1 >= options.fanout) {
          open[pick] = open.back();
          open.pop_back();
        }
        break;
      }
    }
    topo.parent[i] = parent;
    topo.children[parent].push_back(i);
    if (options.shape == TopologyShape::kRandomSparse) open.push_back(i);
    Connect(topo.servers[parent], topo.servers[i]);
  }

  for (uint32_t i = 0; i < options.servers; ++i)
    if (topo.children[i].empty()) topo.leaves.push_back(i);

  // Depth via one pass: depth(i) = depth(parent) + 1; parents always have
  // smaller indices in every shape above.
  std::vector<uint32_t> depth(options.servers, 1);
  for (uint32_t i = 1; i < options.servers; ++i) {
    depth[i] = depth[topo.parent[i]] + 1;
    if (depth[i] > topo.depth) topo.depth = depth[i];
  }

  // Coordinators front the root: every commit tree starts on a distinct
  // coordinator->root session, then overlaps with its rivals from the root
  // down.
  for (const std::string& coord : topo.coordinators)
    Connect(coord, topo.servers[0]);

  return topo;
}

MemoryStats Cluster::MemoryUsage() const {
  MemoryStats stats;
  stats.network_bytes = network_.ApproxBytes();
  stats.nodes = nodes_.size();
  for (const auto& [name, n] : nodes_) {
    stats.tm_bytes += n->tm().ApproxBytes();
    if (n->owns_log()) stats.wal_bytes += n->log().ApproxBytes();
  }
  return stats;
}

Node& Cluster::node(const std::string& name) {
  auto it = nodes_.find(name);
  TPC_CHECK(it != nodes_.end());
  return *it->second;
}

const Node& Cluster::node(const std::string& name) const {
  auto it = nodes_.find(name);
  TPC_CHECK(it != nodes_.end());
  return *it->second;
}

std::vector<std::string> Cluster::NodeNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, n] : nodes_) names.push_back(name);
  return names;
}

uint64_t Cluster::Drain(uint64_t max_events) {
  return ctx_.events().Run(max_events);
}

void Cluster::RunFor(sim::Time duration) {
  ctx_.events().RunUntil(ctx_.now() + duration);
}

std::shared_ptr<DrivenCommit> Cluster::StartCommit(
    const std::string& node_name, uint64_t txn) {
  auto state = std::make_shared<DrivenCommit>();
  const sim::Time start = ctx_.now();
  tm(node_name).Commit(txn, [state, start, this](tm::CommitResult result) {
    state->completed = true;
    state->result = result;
    state->latency = ctx_.now() - start;
  });
  return state;
}

DrivenCommit Cluster::CommitAndWait(const std::string& node_name, uint64_t txn,
                                    sim::Time timeout) {
  const sim::Time start = ctx_.now();
  const sim::Time deadline = start + timeout;
  std::shared_ptr<DrivenCommit> state = StartCommit(node_name, txn);
  while (!state->completed && ctx_.now() <= deadline) {
    if (!ctx_.events().Step()) break;
  }
  if (!state->completed) state->latency = ctx_.now() - start;
  return *state;
}

TxnAudit Cluster::Audit(uint64_t txn) const {
  TxnAudit audit;
  std::vector<tm::Outcome> outcomes;
  for (const auto& [name, n] : nodes_) {
    tm::TxnView view = n->tm().View(txn);  // NOLINT: tm() is non-const
    if (view.outcome == tm::Outcome::kUnknown ||
        view.outcome == tm::Outcome::kActive ||
        view.outcome == tm::Outcome::kReadOnly) {
      // Read-only voters have no effects; they cannot diverge.
      continue;
    }
    ++audit.participants;
    outcomes.push_back(view.outcome);
    if (tm::IsHeuristic(view.outcome)) audit.any_heuristic = true;
    if (view.outcome == tm::Outcome::kInDoubt) audit.any_in_doubt = true;
  }
  if (audit.any_in_doubt) {
    audit.consistent = false;
    return audit;
  }
  bool any_commit = false;
  bool any_abort = false;
  for (tm::Outcome o : outcomes) {
    if (tm::CommittedEffects(o)) {
      any_commit = true;
    } else {
      any_abort = true;
    }
  }
  if (any_commit && any_abort) {
    audit.consistent = false;
    audit.damage_ground_truth = true;
  }
  return audit;
}

tm::TxnCost Cluster::TotalCost(uint64_t txn) const {
  tm::TxnCost total;
  for (const auto& [name, n] : nodes_) {
    tm::TxnCost cost = n->tm().CostOf(txn);
    total.flows_sent += cost.flows_sent;
    total.tm_log_writes += cost.tm_log_writes;
    total.tm_log_forced += cost.tm_log_forced;
  }
  return total;
}

std::string Cluster::ReportMetrics() const {
  std::string out;
  const net::NetworkStats& net_stats = network_.stats();
  StringAppendF(&out,
                "network: %llu sent, %llu delivered, %llu dropped, "
                "%llu bytes sent, %llu bytes delivered\n",
                static_cast<unsigned long long>(net_stats.messages_sent),
                static_cast<unsigned long long>(net_stats.messages_delivered),
                static_cast<unsigned long long>(net_stats.messages_dropped),
                static_cast<unsigned long long>(net_stats.bytes_sent),
                static_cast<unsigned long long>(net_stats.bytes_delivered));
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"node", "log writes", "forced", "device forces",
                  "lock acquisitions", "lock waits", "mean hold (ms)"});
  for (const auto& [name, n] : nodes_) {
    const wal::LogWriteStats& log_stats = n->log().stats();
    lock::LockStats lock_totals;
    double hold_sum = 0;
    uint64_t hold_count = 0;
    for (size_t i = 0; i < n->rm_count(); ++i) {
      const lock::LockStats& stats = n->rm(i).locks().stats();
      lock_totals.acquisitions += stats.acquisitions;
      lock_totals.waits += stats.waits;
      hold_sum += stats.hold_time.sum();
      hold_count += stats.hold_time.count();
    }
    const double mean_hold_ms =
        hold_count == 0 ? 0.0
                        : hold_sum / static_cast<double>(hold_count) /
                              static_cast<double>(sim::kMillisecond);
    rows.push_back(
        {name,
         StringPrintf("%llu", static_cast<unsigned long long>(log_stats.writes)),
         StringPrintf("%llu",
                      static_cast<unsigned long long>(log_stats.forced_writes)),
         StringPrintf("%llu", static_cast<unsigned long long>(
                                  n->owns_log() ? n->log().device_forces() : 0)),
         StringPrintf("%llu",
                      static_cast<unsigned long long>(lock_totals.acquisitions)),
         StringPrintf("%llu", static_cast<unsigned long long>(lock_totals.waits)),
         StringPrintf("%.2f", mean_hold_ms)});
  }
  out += RenderTable(rows);
  return out;
}

}  // namespace tpc::harness
