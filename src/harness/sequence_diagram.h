// Renders a transaction's trace as a paper-style time-sequence diagram:
// one column per node, arrows for message flows, log writes annotated in
// the acting node's column — the format of the paper's Figures 1-8.

#ifndef TPC_HARNESS_SEQUENCE_DIAGRAM_H_
#define TPC_HARNESS_SEQUENCE_DIAGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace tpc::harness {

/// Renders the entries of `trace` for transaction `txn` as a sequence
/// diagram over `nodes` (column order = vector order). Only message sends
/// and log writes are drawn (receives are implied by the arrows). Example:
///
///   time(ms)   coordinator          subordinate
///   --------   -------------------- --------------------
///       0.0    ---PREPARE-------->
///       1.0                         *force tm.prepared
///       3.0    <--VOTE(YES)-------
///
/// Forced writes are marked '*', non-forced '.'.
std::string RenderSequenceDiagram(const sim::Trace& trace, uint64_t txn,
                                  const std::vector<std::string>& nodes);

}  // namespace tpc::harness

#endif  // TPC_HARNESS_SEQUENCE_DIAGRAM_H_
