// LiveCluster: assembles the same protocol stack as harness::Cluster —
// TM + LogManager + RMs per node — on the live backends: LiveRuntime
// worker threads, LiveTransport mailboxes, FileStorage fsync'd logs.
//
// Lifecycle: construct, AddNode/Connect (single-threaded setup), Start,
// then drive transactions from client threads via RunOn/Post. All protocol
// calls (Begin, SendWork, Commit, Crash, Restart, store inspection) MUST
// run on the owning node's mailbox — RunOn posts a closure and blocks until
// it ran, Post is fire-and-forget. Stop() quiesces before joining.
//
// Each node keeps a private SimContext purely for the non-temporal services
// the engines still take from it (trace sink, failure-injection points,
// rng); its clock never advances and nothing is ever scheduled on it. Time,
// timers and txn ids all come from the LiveRuntime.
//
// Logs are real files under `options.dir`, named "<node>.log". A second
// LiveCluster constructed on the same directory reloads them — that is the
// kill-and-recover path the live durability test exercises.

#ifndef TPC_HARNESS_LIVE_CLUSTER_H_
#define TPC_HARNESS_LIVE_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "rm/kv_resource_manager.h"
#include "runtime/live_runtime.h"
#include "runtime/live_transport.h"
#include "sim/sim_context.h"
#include "tm/transaction_manager.h"
#include "wal/file_storage.h"
#include "wal/log_manager.h"

namespace tpc::harness {

/// Cluster-wide live options (per-node knobs are in LiveNodeOptions).
struct LiveClusterOptions {
  /// Worker threads executing node mailboxes.
  int worker_threads = 4;
  /// Timer wheel resolution, microseconds.
  int64_t timer_tick_us = 250;
  /// Directory holding the per-node log files. Created if absent.
  std::string dir;
  /// fdatasync each log force (off only for measuring the sync cost).
  bool file_sync = true;
  /// Per-force wall-clock service floor, microseconds. Restores a realistic
  /// device cost on filesystems whose fsync is near-free (tmpfs).
  int64_t log_force_floor_us = 0;
};

/// Per-node construction options (the live subset of harness::NodeOptions;
/// no shared logs and no simulated device shaping in live mode).
struct LiveNodeOptions {
  tm::TmConfig tm;
  size_t num_rms = 1;
  rm::KVOptions rm_options;
  wal::GroupCommitOptions group_commit;
};

/// One live machine: its mailbox runtime, fsync'd log file, RMs, and TM.
class LiveNode {
 public:
  LiveNode(runtime::LiveNodeRuntime* nrt, runtime::LiveTransport* transport,
           std::string name, const LiveNodeOptions& options,
           const LiveClusterOptions& cluster_options);

  const std::string& name() const { return name_; }
  tm::TransactionManager& tm() { return *tm_; }
  wal::LogManager& log() { return *log_; }
  wal::FileStorage& storage() { return *storage_; }
  rm::KVResourceManager& rm(size_t index = 0) { return *rms_.at(index); }
  runtime::LiveNodeRuntime* node_runtime() { return nrt_; }

 private:
  std::string name_;
  runtime::LiveNodeRuntime* nrt_;
  sim::SimContext ctx_;  ///< trace/failure/rng services only; clock unused
  std::unique_ptr<wal::FileStorage> storage_;
  std::unique_ptr<wal::LogManager> log_;
  std::vector<std::unique_ptr<rm::KVResourceManager>> rms_;
  std::unique_ptr<tm::TransactionManager> tm_;
};

class LiveCluster {
 public:
  explicit LiveCluster(LiveClusterOptions options);
  ~LiveCluster();  ///< stops the runtime, then tears nodes down

  runtime::LiveRuntime& runtime() { return runtime_; }
  runtime::LiveTransport& transport() { return transport_; }

  /// Adds a node (before Start).
  LiveNode& AddNode(const std::string& name,
                    const LiveNodeOptions& options = {});

  /// Declares a session between two nodes (both directions; before Start).
  void Connect(const std::string& a, const std::string& b,
               tm::SessionOptions a_options = {},
               tm::SessionOptions b_options = {});

  void Start();
  /// Waits for the mailboxes to drain, then joins workers. Safe to call
  /// twice.
  void Stop();

  LiveNode& node(const std::string& name);
  tm::TransactionManager& tm(const std::string& name) {
    return node(name).tm();
  }

  /// Runs `fn` on `name`'s serialized context and blocks until it returned.
  /// The closure may touch the node's TM/RMs/log freely; it must not block
  /// on other posted work (that may need this worker).
  void RunOn(const std::string& name, const std::function<void()>& fn);

  /// Fire-and-forget: enqueues `fn` on `name`'s mailbox.
  void Post(const std::string& name, std::function<void()> fn);

  /// Blocks until every mailbox drained and no worker is running.
  void WaitIdle() { runtime_.WaitIdle(); }

  const LiveClusterOptions& options() const { return options_; }

 private:
  LiveClusterOptions options_;
  runtime::LiveRuntime runtime_;
  runtime::LiveTransport transport_;
  // Nodes are destroyed before the runtime's dtor would re-Stop it: Stop()
  // runs first in ~LiveCluster, so no task can touch a dead node.
  std::map<std::string, std::unique_ptr<LiveNode>> nodes_;
  bool started_ = false;
};

}  // namespace tpc::harness

#endif  // TPC_HARNESS_LIVE_CLUSTER_H_
