// Cluster harness: assembles simulated nodes (TM + WAL + RMs + network
// port), drives transactions to completion, and audits cluster-wide
// consistency. Tests, benches, and examples all build on this.

#ifndef TPC_HARNESS_CLUSTER_H_
#define TPC_HARNESS_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "rm/kv_resource_manager.h"
#include "sim/sim_context.h"
#include "tm/transaction_manager.h"
#include "wal/log_manager.h"

namespace tpc::harness {

/// Per-node construction options.
struct NodeOptions {
  tm::TmConfig tm;
  size_t num_rms = 1;
  rm::KVOptions rm_options;
  /// Log device service time per physical force.
  sim::Time log_force_latency = 2 * sim::kMillisecond;
  /// Log device streaming bandwidth (0 = infinite) and service concurrency;
  /// together with log_force_latency these form the node's DeviceOptions.
  uint64_t log_bandwidth_bytes_per_sec = 0;
  uint32_t log_queue_depth = 1;
  wal::GroupCommitOptions group_commit;
  /// Non-empty: this node appends to the named host node's log instead of
  /// owning one (the shared-logs configuration). The host must exist.
  std::string shared_log_host;
};

/// One simulated machine.
class Node {
 public:
  Node(sim::SimContext* ctx, net::Network* network, std::string name,
       const NodeOptions& options, wal::LogManager* host_log);

  const std::string& name() const { return name_; }
  tm::TransactionManager& tm() { return *tm_; }
  wal::LogManager& log() { return *log_; }
  rm::KVResourceManager& rm(size_t index = 0) { return *rms_.at(index); }
  size_t rm_count() const { return rms_.size(); }
  bool owns_log() const { return owned_log_ != nullptr; }

  /// Whole-machine crash: TM, RMs, and (if owned) the log lose volatile
  /// state.
  void Crash();

  /// Quiescent checkpoint: snapshots every RM into the log and truncates
  /// the durable prefix that is no longer needed for recovery. Refuses
  /// (FailedPrecondition) while the TM tracks any transaction or an RM has
  /// live state; only log-owning nodes may checkpoint. `done` runs once
  /// every snapshot is durable and the log is truncated. Note: truncation
  /// also drops the archived verdicts of pre-checkpoint transactions, so a
  /// later restart answers inquiries about them by presumption only.
  Status Checkpoint(std::function<void()> done);

  /// Restart and run log-driven recovery.
  void Restart();

 private:
  std::string name_;
  std::unique_ptr<wal::LogManager> owned_log_;  // null when sharing
  wal::LogManager* log_;
  std::vector<std::unique_ptr<rm::KVResourceManager>> rms_;
  std::unique_ptr<tm::TransactionManager> tm_;
};

/// Shape of a bulk-built cluster topology.
enum class TopologyShape {
  kTree,          ///< complete fanout-ary tree rooted at server 0
  kStar,          ///< every server a direct child of server 0
  kRandomSparse,  ///< seeded random tree with per-node degree <= fanout
};

/// Parameters for BuildTopology.
struct TopologyOptions {
  TopologyShape shape = TopologyShape::kTree;
  /// Server (subordinate) node count, excluding coordinators.
  size_t servers = 64;
  /// Tree/random-sparse: maximum children per server.
  size_t fanout = 8;
  /// Coordinator nodes fronting the root; each owns its own session to
  /// server 0 so concurrent commit trees overlap from the first hop down.
  size_t coordinators = 1;
  /// Seed for random-sparse wiring (independent of the simulation seed, so
  /// the same topology can be replayed under different event seeds).
  uint64_t wiring_seed = 1;
  /// Applied to every node (coordinators and servers alike).
  NodeOptions node_options;
};

/// The wiring BuildTopology produced. Server names sort in index order
/// ("s0000" < "s0001" < ...), so name-lexicographic session iteration —
/// which is trace-visible — matches index arithmetic.
struct Topology {
  static constexpr uint32_t kNoParent = UINT32_MAX;

  std::vector<std::string> coordinators;
  std::vector<std::string> servers;           ///< index-aligned with parent/children
  std::vector<uint32_t> parent;               ///< per server; kNoParent at the root
  std::vector<std::vector<uint32_t>> children;  ///< per server
  std::vector<uint32_t> leaves;               ///< servers with no children
  size_t depth = 1;  ///< root-to-deepest-leaf node count

  /// The child of `node` whose subtree contains `target` (walks parent
  /// links: O(depth), independent of cluster size). Requires `target` to
  /// be a strict descendant of `node`.
  uint32_t NextHop(uint32_t node, uint32_t target) const;
};

/// Heap footprint of the cluster's own tables, by layer. The property the
/// cluster bench gates: per-node cost stays O(fanout + local work) as the
/// cluster grows, because link state, sessions, and per-txn side tables are
/// all sparse.
struct MemoryStats {
  uint64_t network_bytes = 0;  ///< interning, link map, payload pool, slab
  uint64_t tm_bytes = 0;       ///< sessions, txn slab, per-txn meta (all TMs)
  uint64_t wal_bytes = 0;      ///< log buffers + stats (owned logs only)
  size_t nodes = 0;

  uint64_t total_bytes() const { return network_bytes + tm_bytes + wal_bytes; }
  double bytes_per_node() const {
    return nodes == 0 ? 0.0
                      : static_cast<double>(total_bytes()) /
                            static_cast<double>(nodes);
  }
};

/// Result of driving a commit through the event loop.
struct DrivenCommit {
  bool completed = false;  ///< the commit callback fired
  tm::CommitResult result;
  sim::Time latency = 0;  ///< commit call -> callback, simulated time
};

/// Cluster-wide ground truth for one transaction.
struct TxnAudit {
  /// Every participant with a recorded outcome has the same effects
  /// (commit everywhere or abort everywhere). In-doubt nodes make this
  /// false (undecided), as do heuristic mismatches.
  bool consistent = true;
  /// Some participant's effects disagree with the root's outcome (the
  /// definition of heuristic damage).
  bool damage_ground_truth = false;
  bool any_heuristic = false;
  bool any_in_doubt = false;
  size_t participants = 0;
};

/// The simulated cluster.
class Cluster {
 public:
  explicit Cluster(uint64_t seed = 42);

  sim::SimContext& ctx() { return ctx_; }
  net::Network& network() { return network_; }

  /// Adds a node. Nodes sharing a log must be added after their host.
  Node& AddNode(const std::string& name, const NodeOptions& options = {});

  /// Declares a session between two nodes (both directions).
  void Connect(const std::string& a, const std::string& b,
               tm::SessionOptions a_options = {},
               tm::SessionOptions b_options = {});

  /// Bulk-constructs a cluster: `servers` server nodes wired per the shape,
  /// plus `coordinators` coordinator nodes each connected to the root
  /// server. Node creation and wiring are deterministic (names in index
  /// order, sessions along tree edges only), so a 2048-node cell costs
  /// O(nodes + links), not O(nodes²).
  Topology BuildTopology(const TopologyOptions& options);

  /// Sums the heap held by the network, every TM, and every owned log.
  MemoryStats MemoryUsage() const;

  Node& node(const std::string& name);
  const Node& node(const std::string& name) const;
  tm::TransactionManager& tm(const std::string& name) {
    return node(name).tm();
  }

  /// Node names in deterministic (sorted) order.
  std::vector<std::string> NodeNames() const;

  /// Runs the event loop until it drains (only safe without armed
  /// retry-forever timers). Returns events executed.
  uint64_t Drain(uint64_t max_events = 2'000'000);

  /// Advances simulated time by `duration`.
  void RunFor(sim::Time duration);

  /// Initiates Commit at `node_name`; the returned state fills in when the
  /// commit callback eventually fires (safe across later event-loop runs).
  std::shared_ptr<DrivenCommit> StartCommit(const std::string& node_name,
                                            uint64_t txn);

  /// Initiates Commit at `node_name` and runs the loop until the commit
  /// callback fires (or `timeout` simulated time passes).
  DrivenCommit CommitAndWait(const std::string& node_name, uint64_t txn,
                             sim::Time timeout = 10 * 60 * sim::kSecond);

  /// Audits one transaction across every node.
  TxnAudit Audit(uint64_t txn) const;

  /// Sum of per-node TM costs for a transaction (total flows and TM log
  /// writes across the cluster — the quantities of Tables 2-4).
  tm::TxnCost TotalCost(uint64_t txn) const;

  /// Formatted cluster-wide metrics: network traffic, per-node log writes
  /// (logical and physical), and lock statistics. For operators, examples,
  /// and bench footers.
  std::string ReportMetrics() const;

 private:
  sim::SimContext ctx_;
  net::Network network_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
};

}  // namespace tpc::harness

#endif  // TPC_HARNESS_CLUSTER_H_
