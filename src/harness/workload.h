// Workload generator: a seeded, closed-loop stream of mixed distributed
// transactions over a coordinator + N servers, with tunable read-only
// fraction, hot-key contention, and fan-out — the shape of the paper's
// "commercial environment" (reservations, banking, credit cards).
//
// Collects the quantities the paper argues about: outcome counts, commit
// latency, total flows, and (forced) log writes.

#ifndef TPC_HARNESS_WORKLOAD_H_
#define TPC_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "harness/cluster.h"
#include "util/histogram.h"
#include "util/random.h"

namespace tpc::harness {

/// Workload shape.
struct WorkloadOptions {
  uint64_t seed = 1;
  size_t servers = 4;            ///< server nodes "s0".."s<N-1>"
  uint64_t transactions = 100;
  /// Fraction of transactions that perform no updates anywhere.
  double read_only_fraction = 0.3;
  /// Fraction of writes that hit the single hot key (contention knob).
  double hot_key_fraction = 0.2;
  uint64_t keys = 100;           ///< cold-key space per server
  uint64_t min_participants = 1; ///< servers touched per transaction
  uint64_t max_participants = 3;
  /// Closed-loop think time between transactions.
  sim::Time think_time = 10 * sim::kMillisecond;
  /// Per-transaction completion deadline (incomplete past this).
  sim::Time deadline = 60 * sim::kSecond;
};

/// Aggregate results.
struct WorkloadStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t incomplete = 0;
  Histogram commit_latency;  ///< microseconds, completed transactions only
  uint64_t flows = 0;        ///< cluster-total protocol flows
  uint64_t log_writes = 0;   ///< cluster-total TM log writes
  uint64_t forced = 0;       ///< ... of which forced
  sim::Time elapsed = 0;     ///< simulated wall time for the whole stream

  /// Simulated transactions per second.
  double Throughput() const;

  /// One-paragraph summary.
  std::string ToString() const;
};

/// Drives one workload against a cluster.
class Workload {
 public:
  /// Builds the standard topology into `cluster`: node "coord" plus
  /// "s0".."s<N-1>", all connected to the coordinator, every server with a
  /// write/read handler driven by the payload ("w:<key>" / "r:<key>").
  /// `node_options` applies to every node (protocol/optimization config).
  static void BuildStandardCluster(Cluster* cluster,
                                   const WorkloadOptions& options,
                                   const NodeOptions& node_options);

  Workload(Cluster* cluster, WorkloadOptions options);

  /// Runs the closed-loop stream to completion and returns the stats.
  WorkloadStats Run();

 private:
  Cluster* cluster_;
  WorkloadOptions options_;
  Random rng_;
};

}  // namespace tpc::harness

#endif  // TPC_HARNESS_WORKLOAD_H_
