#include "harness/sequence_diagram.h"

#include <algorithm>

#include "util/format.h"

namespace tpc::harness {
namespace {

constexpr size_t kTimeWidth = 10;
constexpr size_t kColumnWidth = 26;

size_t ColumnOf(const std::vector<std::string>& nodes,
                const std::string& name) {
  for (size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i] == name) return i;
  return nodes.size();
}

/// Places `text` into the lane between column `from` and column `to`
/// (from < to), drawn as an arrow spanning the intermediate columns.
std::string ArrowLine(size_t columns, size_t from, size_t to, bool rightward,
                      const std::string& label) {
  // The lane spans from the middle of column `from` to the middle of
  // column `to` (from < to here).
  std::string line(kTimeWidth + columns * kColumnWidth, ' ');
  size_t start = kTimeWidth + from * kColumnWidth + kColumnWidth / 2;
  size_t end = kTimeWidth + to * kColumnWidth + kColumnWidth / 2;
  for (size_t i = start; i < end; ++i) line[i] = '-';
  if (rightward) {
    line[end - 1] = '>';
  } else {
    line[start] = '<';
  }
  // Overlay the label, centered.
  size_t span = end - start;
  std::string text = label;
  if (text.size() > span - 4 && span > 7) text = text.substr(0, span - 4);
  size_t label_at = start + (span - text.size()) / 2;
  for (size_t i = 0; i < text.size() && label_at + i < line.size(); ++i)
    line[label_at + i] = text[i];
  return line;
}

std::string NoteLine(size_t columns, size_t column, const std::string& text) {
  std::string line(kTimeWidth + columns * kColumnWidth, ' ');
  size_t at = kTimeWidth + column * kColumnWidth + 2;
  for (size_t i = 0; i < text.size() && at + i < line.size(); ++i)
    line[at + i] = text[i];
  return line;
}

void StampTime(std::string* line, sim::Time at) {
  std::string stamp =
      StringPrintf("%8.1f", static_cast<double>(at) / sim::kMillisecond);
  for (size_t i = 0; i < stamp.size() && i < kTimeWidth; ++i)
    (*line)[i] = stamp[i];
}

std::string Rstrip(std::string s) {
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

std::string RenderSequenceDiagram(const sim::Trace& trace, uint64_t txn,
                                  const std::vector<std::string>& nodes) {
  const size_t columns = nodes.size();
  std::string out;

  // Header.
  std::string header(kTimeWidth + columns * kColumnWidth, ' ');
  std::string rule = header;
  const std::string time_label = "time(ms)";
  for (size_t i = 0; i < time_label.size(); ++i) header[i] = time_label[i];
  for (size_t i = 0; i + 2 < kTimeWidth; ++i) rule[i] = '-';
  for (size_t c = 0; c < columns; ++c) {
    size_t at = kTimeWidth + c * kColumnWidth + 2;
    for (size_t i = 0; i < nodes[c].size() && at + i < header.size(); ++i)
      header[at + i] = nodes[c][i];
    for (size_t i = 2; i + 4 < kColumnWidth; ++i) rule[at + i - 2] = '-';
  }
  out += Rstrip(header) + "\n" + Rstrip(rule) + "\n";

  for (const auto& entry : trace.entries()) {
    if (entry.txn != txn) continue;
    std::string line;
    switch (entry.kind) {
      case sim::TraceKind::kSend: {
        size_t from = ColumnOf(nodes, entry.node);
        size_t to = ColumnOf(nodes, entry.peer);
        if (from >= columns || to >= columns) continue;
        const bool rightward = from < to;
        line = ArrowLine(columns, std::min(from, to), std::max(from, to),
                         rightward, entry.detail);
        break;
      }
      case sim::TraceKind::kLogForce:
      case sim::TraceKind::kLogWrite: {
        size_t column = ColumnOf(nodes, entry.node);
        if (column >= columns) continue;
        const char mark = entry.kind == sim::TraceKind::kLogForce ? '*' : '.';
        line = NoteLine(columns, column, std::string(1, mark) + entry.detail);
        break;
      }
      case sim::TraceKind::kHeuristic:
      case sim::TraceKind::kState: {
        size_t column = ColumnOf(nodes, entry.node);
        if (column >= columns) continue;
        line = NoteLine(columns, column, "[" + entry.detail + "]");
        break;
      }
      default:
        continue;
    }
    StampTime(&line, entry.at);
    out += Rstrip(line) + "\n";
  }
  return out;
}

}  // namespace tpc::harness
