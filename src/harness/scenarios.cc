#include "harness/scenarios.h"

#include "harness/sequence_diagram.h"

#include <memory>
#include <utility>

#include "util/format.h"
#include "util/logging.h"

namespace tpc::harness {
namespace {

using analysis::CostTriplet;
using analysis::RoleCost;
using analysis::Table3Variant;
using analysis::Table4Variant;
using tm::ProtocolKind;

NodeOptions PaOptions() {
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedAbort;
  return options;
}

/// App-data handler that writes one key to the node's first RM.
void AttachWriter(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v", [](Status st) {
          TPC_CHECK(st.ok());
        });
      });
}

CostTriplet ToTriplet(const tm::TxnCost& cost) {
  return {cost.flows_sent, cost.tm_log_writes, cost.tm_log_forced};
}

RoleCost ToRoleCost(const tm::TxnCost& cost) {
  return {cost.flows_sent, cost.tm_log_writes, cost.tm_log_forced};
}

std::string MemberName(uint64_t i) {
  return StringPrintf("m%02llu", static_cast<unsigned long long>(i));
}

}  // namespace

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

ScenarioResult RunTable3Scenario(Table3Variant variant, uint64_t n,
                                 uint64_t m) {
  TPC_CHECK(n >= 2);
  TPC_CHECK(m <= n - 1);
  ScenarioResult out;
  Cluster c;

  const uint64_t members = n - 1;
  // Member i uses the optimization iff i < m (except where noted below).
  auto is_opt_member = [&](uint64_t i) { return i < m; };

  NodeOptions root_options = PaOptions();
  NodeOptions plain_member = PaOptions();

  switch (variant) {
    case Table3Variant::kBasic2PC:
      root_options.tm.protocol = ProtocolKind::kBasic2PC;
      root_options.tm.read_only_opt = false;
      plain_member.tm.protocol = ProtocolKind::kBasic2PC;
      plain_member.tm.read_only_opt = false;
      break;
    case Table3Variant::kPaLeaveOut:
      root_options.tm.include_idle_sessions = true;
      root_options.tm.leave_out_opt = true;
      break;
    case Table3Variant::kPaWaitForOutcome:
      root_options.tm.wait_for_outcome_block = false;
      break;
    case Table3Variant::kPaLastAgent:
      root_options.tm.last_agent_opt = m > 0;
      break;
    case Table3Variant::kPaVoteReliable:
      root_options.tm.vote_reliable_opt = true;
      plain_member.tm.vote_reliable_opt = true;
      break;
    default:
      break;
  }

  c.AddNode("root", root_options);

  // The last-agent variant builds a chain of m delegations hanging off the
  // root; every other variant is a flat star.
  const bool la_chain = variant == Table3Variant::kPaLastAgent && m > 0;
  const uint64_t star_members = la_chain ? members - m : members;

  for (uint64_t i = 0; i < members; ++i) {
    NodeOptions options = plain_member;
    if (variant == Table3Variant::kPaVoteReliable)
      options.rm_options.reliable = is_opt_member(i);
    if (variant == Table3Variant::kPaSharedLogs && is_opt_member(i))
      options.shared_log_host = "root";
    if (la_chain && i >= star_members) options.tm.last_agent_opt = true;
    c.AddNode(MemberName(i), options);
  }

  // Wire sessions.
  for (uint64_t i = 0; i < star_members; ++i) {
    tm::SessionOptions root_side;
    if (variant == Table3Variant::kPaLongLocks && is_opt_member(i))
      root_side.long_locks = true;
    c.Connect("root", MemberName(i), root_side, {});
  }
  if (la_chain) {
    // root -> la_0 -> la_1 -> ... -> la_{m-1}
    c.Connect("root", MemberName(star_members),
              {.last_agent_candidate = true}, {});
    for (uint64_t i = star_members; i + 1 < members; ++i) {
      c.Connect(MemberName(i), MemberName(i + 1),
                {.last_agent_candidate = true}, {});
    }
  }

  // Workload handlers.
  for (uint64_t i = 0; i < members; ++i) {
    const std::string name = MemberName(i);
    const bool writes = !(variant == Table3Variant::kPaReadOnly ||
                          variant == Table3Variant::kBasic2PC)
                            ? true
                            : !is_opt_member(i);
    const bool unsolicited =
        variant == Table3Variant::kPaUnsolicitedVote && is_opt_member(i);
    const bool forwards = la_chain && i >= star_members && i + 1 < members;
    const std::string next = forwards ? MemberName(i + 1) : "";
    c.tm(name).SetAppDataHandler(
        [&c, name, writes, unsolicited, forwards, next](
            uint64_t txn, const net::NodeId&, std::string_view) {
          if (writes) {
            c.tm(name).Write(txn, 0, name + "_key", "v", [](Status st) {
              TPC_CHECK(st.ok());
            });
          }
          if (forwards) TPC_CHECK(c.tm(name).SendWork(txn, next).ok());
          if (unsolicited) {
            c.tm(name).UnsolicitedPrepare(txn);
          }
        });
  }

  // Drive one transaction. Leave-out members receive no data at all.
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "root_key", "v",
                     [](Status st) { TPC_CHECK(st.ok()); });
  for (uint64_t i = 0; i < members; ++i) {
    if (variant == Table3Variant::kPaLeaveOut && is_opt_member(i)) continue;
    if (la_chain && i > star_members) continue;  // chain forwards data
    TPC_CHECK(c.tm("root").SendWork(txn, MemberName(i)).ok());
  }
  c.RunFor(2 * sim::kSecond);

  std::shared_ptr<DrivenCommit> commit = c.StartCommit("root", txn);
  c.RunFor(30 * sim::kSecond);

  if (variant == Table3Variant::kPaLongLocks) {
    // The buffered acks ride the first data message of the next
    // transaction on each long-locks session.
    for (uint64_t i = 0; i < members; ++i) {
      if (!is_opt_member(i)) continue;
      uint64_t next_txn = c.tm(MemberName(i)).Begin();
      TPC_CHECK(c.tm(MemberName(i)).SendWork(next_txn, "root").ok());
    }
    c.RunFor(sim::kSecond);
  }
  if (la_chain) {
    // Flush the implied acks down the chain so END records are written.
    uint64_t next_txn = c.tm("root").Begin();
    TPC_CHECK(c.tm("root").SendWork(next_txn, MemberName(star_members)).ok());
    for (uint64_t i = star_members; i + 1 < members; ++i) {
      uint64_t chain_txn = c.tm(MemberName(i)).Begin();
      TPC_CHECK(
          c.tm(MemberName(i)).SendWork(chain_txn, MemberName(i + 1)).ok());
    }
    c.RunFor(sim::kSecond);
  }

  out.completed = commit->completed;
  out.result = commit->result;
  out.commit_latency = commit->latency;
  out.measured = ToTriplet(c.TotalCost(txn));
  return out;
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

namespace {

struct Table2Setup {
  std::string label;
  NodeOptions coord;
  NodeOptions sub;
  tm::SessionOptions coord_session;
  bool coord_writes = true;
  bool sub_writes = true;
  bool sub_unsolicited = false;
  bool sub_votes_no = false;
  bool leave_out_warmup = false;  // run a warm-up txn, measure an idle one
  bool flush_after = false;       // send follow-up data to flush implied acks
};

MeasuredTable2Row RunOneTable2(const Table2Setup& setup) {
  Cluster c;
  c.AddNode("coord", setup.coord);
  c.AddNode("sub", setup.sub);
  c.Connect("coord", "sub", setup.coord_session, {});

  const bool sub_writes = setup.sub_writes;
  const bool sub_unsolicited = setup.sub_unsolicited;
  c.tm("sub").SetAppDataHandler(
      [&c, sub_writes, sub_unsolicited](uint64_t txn, const net::NodeId&,
                                        std::string_view) {
        if (sub_writes) {
          c.tm("sub").Write(txn, 0, "sub_key", "v", [&c, txn,
                                                     sub_unsolicited](Status st) {
            TPC_CHECK(st.ok());
            if (sub_unsolicited) c.tm("sub").UnsolicitedPrepare(txn);
          });
        }
      });

  auto run_txn = [&](bool touch_sub) {
    uint64_t txn = c.tm("coord").Begin();
    if (setup.coord_writes) {
      c.tm("coord").Write(txn, 0, "coord_key", "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
    }
    if (touch_sub) TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
    c.RunFor(2 * sim::kSecond);
    if (setup.sub_votes_no) c.node("sub").rm().FailNextPrepare();
    DrivenCommit commit = c.CommitAndWait("coord", txn);
    TPC_CHECK(commit.completed);
    c.RunFor(sim::kSecond);
    return txn;
  };

  uint64_t measured_txn;
  if (setup.leave_out_warmup) {
    run_txn(/*touch_sub=*/true);
    measured_txn = run_txn(/*touch_sub=*/false);
  } else {
    measured_txn = run_txn(/*touch_sub=*/true);
  }

  if (setup.flush_after) {
    uint64_t next_txn = c.tm("coord").Begin();
    TPC_CHECK(c.tm("coord").SendWork(next_txn, "sub").ok());
    uint64_t back_txn = c.tm("sub").Begin();
    TPC_CHECK(c.tm("sub").SendWork(back_txn, "coord").ok());
    c.RunFor(sim::kSecond);
  }

  MeasuredTable2Row row;
  row.label = setup.label;
  row.coordinator = ToRoleCost(c.tm("coord").CostOf(measured_txn));
  row.subordinate = ToRoleCost(c.tm("sub").CostOf(measured_txn));
  return row;
}

}  // namespace

std::vector<MeasuredTable2Row> RunTable2Scenarios() {
  std::vector<Table2Setup> setups;

  {
    Table2Setup s;
    s.label = "Basic 2PC";
    s.coord.tm.protocol = ProtocolKind::kBasic2PC;
    s.sub.tm.protocol = ProtocolKind::kBasic2PC;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PN";
    s.coord.tm.protocol = ProtocolKind::kPresumedNothing;
    s.sub.tm.protocol = ProtocolKind::kPresumedNothing;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA, commit";
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA, abort (NO vote)";
    s.sub_votes_no = true;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA, read-only";
    s.coord_writes = false;
    s.sub_writes = false;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA & last agent";
    s.coord.tm.last_agent_opt = true;
    s.sub.tm.last_agent_opt = true;
    s.coord_session.last_agent_candidate = true;
    s.flush_after = true;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA & unsolicited vote";
    s.sub_unsolicited = true;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA & leave-out";
    s.coord.tm.include_idle_sessions = true;
    s.coord.tm.leave_out_opt = true;
    s.leave_out_warmup = true;
    // The paper's all-zero row isolates protocol cost: the measured
    // transaction performs no local updates either.
    s.coord_writes = false;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA & vote reliable";
    s.coord.tm.vote_reliable_opt = true;
    s.sub.tm.vote_reliable_opt = true;
    s.sub.rm_options.reliable = true;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA & wait for outcome";
    s.coord.tm.wait_for_outcome_block = false;
    setups.push_back(s);
  }
  {
    Table2Setup s;
    s.label = "PA & shared log";
    s.sub.shared_log_host = "coord";
    setups.push_back(s);
  }

  std::vector<MeasuredTable2Row> rows;
  rows.reserve(setups.size());
  for (const auto& setup : setups) {
    // Default protocol for unset rows is PA (NodeOptions default).
    rows.push_back(RunOneTable2(setup));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

analysis::CostTriplet RunTable4Scenario(Table4Variant variant, uint64_t r) {
  Cluster c;
  NodeOptions a_options = PaOptions();
  NodeOptions b_options = PaOptions();
  tm::SessionOptions a_session;  // a's side of the a<->b session
  tm::SessionOptions b_session;

  switch (variant) {
    case Table4Variant::kBasic2PC:
      a_options.tm.protocol = ProtocolKind::kBasic2PC;
      b_options.tm.protocol = ProtocolKind::kBasic2PC;
      break;
    case Table4Variant::kLongLocks:
      a_session.long_locks = true;
      break;
    case Table4Variant::kLongLocksLastAgent:
      a_options.tm.last_agent_opt = true;
      a_options.tm.include_idle_sessions = true;
      b_options.tm.last_agent_opt = true;
      b_options.tm.include_idle_sessions = true;
      a_session.long_locks = true;  // a requests long locks of its last agent
      a_session.last_agent_candidate = true;
      b_session.last_agent_candidate = true;
      break;
  }

  c.AddNode("a", a_options);
  c.AddNode("b", b_options);
  c.Connect("a", "b", a_session, b_session);

  // b writes on data; under long locks it also sends a data reply, which is
  // what carries the previous transaction's buffered ack.
  const bool echo = variant == Table4Variant::kLongLocks;
  c.tm("b").SetAppDataHandler(
      [&c, echo](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("b").Write(txn, 0, "b_key", "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
        if (echo) TPC_CHECK(c.tm("b").SendWork(txn, "a", "reply").ok());
      });
  c.tm("a").SetAppDataHandler(
      [](uint64_t, const net::NodeId&, std::string_view) {});

  std::vector<uint64_t> txns;

  if (variant == Table4Variant::kLongLocksLastAgent) {
    // Pairs of transactions with alternating initiators: three flows per
    // pair (vote-yes / commit+vote-yes / commit).
    TPC_CHECK(r % 2 == 0);
    for (uint64_t pair = 0; pair < r / 2; ++pair) {
      uint64_t t1 = c.tm("a").Begin();
      txns.push_back(t1);
      c.tm("a").Write(t1, 0, "a_key", "v",
                      [](Status st) { TPC_CHECK(st.ok()); });
      TPC_CHECK(c.tm("a").SendWork(t1, "b").ok());
      c.RunFor(100 * sim::kMillisecond);
      c.tm("a").Commit(t1, [](tm::CommitResult result) {
        TPC_CHECK(result.outcome == tm::Outcome::kCommitted);
      });
      c.RunFor(100 * sim::kMillisecond);  // b decided; COMMIT(t1) buffered

      uint64_t t2 = c.tm("b").Begin();
      txns.push_back(t2);
      c.tm("b").Write(t2, 0, "b_key2", "v",
                      [](Status st) { TPC_CHECK(st.ok()); });
      c.tm("b").Commit(t2, [](tm::CommitResult result) {
        TPC_CHECK(result.outcome == tm::Outcome::kCommitted);
      });
      c.RunFor(200 * sim::kMillisecond);
    }
    // Flush the final implied ack.
    uint64_t flush = c.tm("b").Begin();
    TPC_CHECK(c.tm("b").SendWork(flush, "a").ok());
    c.RunFor(sim::kSecond);
  } else {
    for (uint64_t i = 0; i < r; ++i) {
      uint64_t txn = c.tm("a").Begin();
      txns.push_back(txn);
      c.tm("a").Write(txn, 0, "a_key", "v",
                      [](Status st) { TPC_CHECK(st.ok()); });
      TPC_CHECK(c.tm("a").SendWork(txn, "b").ok());
      c.RunFor(100 * sim::kMillisecond);
      // StartCommit keeps the completion state on the heap: under long
      // locks the callback fires during a *later* iteration, when a stack
      // local would be long gone.
      std::shared_ptr<DrivenCommit> commit = c.StartCommit("a", txn);
      c.RunFor(500 * sim::kMillisecond);
      // Under long locks the ack (and hence completion) arrives with the
      // next transaction's data; otherwise it is already done.
      if (variant == Table4Variant::kBasic2PC) {
        TPC_CHECK(commit->completed);
        TPC_CHECK(commit->result.outcome == tm::Outcome::kCommitted);
      }
    }
    // Flush the last buffered ack.
    if (variant == Table4Variant::kLongLocks) {
      uint64_t flush = c.tm("b").Begin();
      TPC_CHECK(c.tm("b").SendWork(flush, "a").ok());
      c.RunFor(sim::kSecond);
    }
  }

  CostTriplet total;
  for (uint64_t txn : txns) {
    tm::TxnCost cost = c.TotalCost(txn);
    total.flows += cost.flows_sent;
    total.writes += cost.tm_log_writes;
    total.forced += cost.tm_log_forced;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

namespace {

/// Renders the protocol-relevant trace for one transaction plus a footer.
std::string RenderFigure(Cluster& c, uint64_t txn, const std::string& title,
                         const std::string& expectation,
                         const std::vector<std::string>& nodes = {}) {
  std::string out = "=== " + title + " ===\n";
  if (!nodes.empty()) {
    out += RenderSequenceDiagram(c.ctx().trace(), txn, nodes);
    out += "\n";
  }
  for (const auto& entry : c.ctx().trace().entries()) {
    if (entry.txn != txn) continue;
    if (entry.kind != sim::TraceKind::kSend &&
        entry.kind != sim::TraceKind::kLogForce &&
        entry.kind != sim::TraceKind::kLogWrite &&
        entry.kind != sim::TraceKind::kState &&
        entry.kind != sim::TraceKind::kHeuristic) {
      continue;
    }
    std::string who = entry.node;
    if (!entry.peer.empty()) who += " -> " + entry.peer;
    StringAppendF(&out, "[%8lldus] %-22s %-6s %s\n",
                  static_cast<long long>(entry.at), who.c_str(),
                  std::string(sim::TraceKindToString(entry.kind)).c_str(),
                  entry.detail.c_str());
  }
  tm::TxnCost total = c.TotalCost(txn);
  StringAppendF(&out,
                "--- totals: %llu flows, %llu TM log writes (%llu forced)\n",
                static_cast<unsigned long long>(total.flows_sent),
                static_cast<unsigned long long>(total.tm_log_writes),
                static_cast<unsigned long long>(total.tm_log_forced));
  out += "--- paper: " + expectation + "\n";
  return out;
}

std::string FigureTwoNode(ProtocolKind protocol, const std::string& title,
                          const std::string& expectation) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = protocol;
  c.AddNode("coordinator", options);
  c.AddNode("subordinate", options);
  c.Connect("coordinator", "subordinate");
  AttachWriter(c, "subordinate");
  uint64_t txn = c.tm("coordinator").Begin();
  c.tm("coordinator").Write(txn, 0, "k", "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "subordinate").ok());
  c.RunFor(sim::kSecond);
  DrivenCommit commit = c.CommitAndWait("coordinator", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(sim::kSecond);
  return RenderFigure(c, txn, title, expectation,
                      {"coordinator", "subordinate"});
}

std::string FigureChain(ProtocolKind protocol, const std::string& title,
                        const std::string& expectation) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = protocol;
  c.AddNode("coordinator", options);
  c.AddNode("cascaded", options);
  c.AddNode("subordinate", options);
  c.Connect("coordinator", "cascaded");
  c.Connect("cascaded", "subordinate");
  c.tm("cascaded").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
        if (from != "coordinator") return;
        c.tm("cascaded").Write(txn, 0, "mid", "v",
                               [](Status st) { TPC_CHECK(st.ok()); });
        TPC_CHECK(c.tm("cascaded").SendWork(txn, "subordinate").ok());
      });
  AttachWriter(c, "subordinate");
  uint64_t txn = c.tm("coordinator").Begin();
  c.tm("coordinator").Write(txn, 0, "k", "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "cascaded").ok());
  c.RunFor(sim::kSecond);
  DrivenCommit commit = c.CommitAndWait("coordinator", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(sim::kSecond);
  return RenderFigure(c, txn, title, expectation,
                      {"coordinator", "cascaded", "subordinate"});
}

std::string Figure4PartialReadOnly() {
  Cluster c;
  c.AddNode("coordinator", PaOptions());
  c.AddNode("reader", PaOptions());
  c.AddNode("writer", PaOptions());
  c.Connect("coordinator", "reader");
  c.Connect("coordinator", "writer");
  // The reader participates but performs no updates.
  c.tm("reader").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("reader").Read(txn, 0, "somewhere",
                            [](Result<std::string>) {});
      });
  AttachWriter(c, "writer");
  uint64_t txn = c.tm("coordinator").Begin();
  c.tm("coordinator").Write(txn, 0, "k", "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "reader").ok());
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "writer").ok());
  c.RunFor(sim::kSecond);
  DrivenCommit commit = c.CommitAndWait("coordinator", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(sim::kSecond);
  return RenderFigure(
      c, txn, "Figure 4: partial read-only commit (PA)",
      "the read-only voter is excluded from phase two and performs no "
      "log writes; the update subordinate runs the full protocol",
      {"reader", "coordinator", "writer"});
}

std::string Figure5PartitionedTree() {
  // Two programs (pd, pe) initiate commit for the same transaction — the
  // inconsistency general leave-out would permit. The protocol detects the
  // two initiators and aborts both trees.
  Cluster c;
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedNothing;
  for (const char* n : {"pd", "pa", "pe"}) c.AddNode(n, options);
  c.Connect("pd", "pa");
  c.Connect("pa", "pe");
  uint64_t txn = c.tm("pd").Begin();
  c.tm("pd").Write(txn, 0, "d", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("pd").SendWork(txn, "pa").ok());
  c.RunFor(sim::kSecond);
  c.tm("pe").Write(txn, 0, "e", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("pe").SendWork(txn, "pa").ok());
  c.RunFor(sim::kSecond);

  bool pd_done = false, pe_done = false;
  tm::Outcome pd_outcome = tm::Outcome::kUnknown;
  tm::Outcome pe_outcome = tm::Outcome::kUnknown;
  c.tm("pd").Commit(txn, [&](tm::CommitResult result) {
    pd_done = true;
    pd_outcome = result.outcome;
  });
  c.tm("pe").Commit(txn, [&](tm::CommitResult result) {
    pe_done = true;
    pe_outcome = result.outcome;
  });
  c.RunFor(60 * sim::kSecond);
  TPC_CHECK(pd_done && pe_done);

  std::string out = RenderFigure(
      c, txn, "Figure 5: transaction tree partitioned by left-out partners",
      "two independent commit initiations for one transaction must not "
      "reach different outcomes: both abort",
      {"pd", "pa", "pe"});
  StringAppendF(&out, "--- outcome at pd: %s, at pe: %s (consistent: %s)\n",
                std::string(tm::OutcomeToString(pd_outcome)).c_str(),
                std::string(tm::OutcomeToString(pe_outcome)).c_str(),
                c.Audit(txn).consistent ? "yes" : "NO");
  return out;
}

std::string Figure6LastAgent() {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.last_agent_opt = true;
  c.AddNode("coordinator", options);
  c.AddNode("last_agent", options);
  c.Connect("coordinator", "last_agent", {.last_agent_candidate = true}, {});
  AttachWriter(c, "last_agent");
  uint64_t txn = c.tm("coordinator").Begin();
  c.tm("coordinator").Write(txn, 0, "k", "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "last_agent").ok());
  c.RunFor(sim::kSecond);
  DrivenCommit commit = c.CommitAndWait("coordinator", txn);
  TPC_CHECK(commit.completed);
  // Next-transaction data delivers the implied ack.
  uint64_t next_txn = c.tm("coordinator").Begin();
  TPC_CHECK(c.tm("coordinator").SendWork(next_txn, "last_agent").ok());
  c.RunFor(sim::kSecond);
  return RenderFigure(
      c, txn, "Figure 6: last-agent commit processing (PA)",
      "2 flows total: the coordinator's YES vote transfers the decision; "
      "the commit comes back; the ack is implied by the next data",
      {"coordinator", "last_agent"});
}

std::string Figure7LongLocks() {
  Cluster c;
  c.AddNode("coordinator", PaOptions());
  c.AddNode("subordinate", PaOptions());
  c.Connect("coordinator", "subordinate", {.long_locks = true}, {});
  c.tm("subordinate").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("subordinate").Write(txn, 0, "s", "v",
                                  [](Status st) { TPC_CHECK(st.ok()); });
      });
  uint64_t txn = c.tm("coordinator").Begin();
  c.tm("coordinator").Write(txn, 0, "k", "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "subordinate").ok());
  c.RunFor(sim::kSecond);
  bool done = false;
  c.tm("coordinator").Commit(txn, [&done](tm::CommitResult) { done = true; });
  c.RunFor(5 * sim::kSecond);
  TPC_CHECK(!done);  // ack buffered at the subordinate
  // The subordinate starts the next transaction; its data message carries
  // the buffered ack.
  uint64_t next_txn = c.tm("subordinate").Begin();
  TPC_CHECK(c.tm("subordinate").SendWork(next_txn, "coordinator",
                                         "next-transaction data").ok());
  c.RunFor(sim::kSecond);
  TPC_CHECK(done);
  return RenderFigure(
      c, txn, "Figure 7: long locks (ack rides the next transaction's data)",
      "3 commit flows (prepare / vote yes / commit); the ack is packaged "
      "with the next transaction's first data message",
      {"coordinator", "subordinate"});
}

std::string Figure8VoteReliable() {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.vote_reliable_opt = true;
  options.rm_options.reliable = true;
  c.AddNode("coordinator", options);
  c.AddNode("cascaded", options);
  c.AddNode("subordinate", options);
  c.Connect("coordinator", "cascaded");
  c.Connect("cascaded", "subordinate");
  c.tm("cascaded").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
        if (from != "coordinator") return;
        c.tm("cascaded").Write(txn, 0, "mid", "v",
                               [](Status st) { TPC_CHECK(st.ok()); });
        TPC_CHECK(c.tm("cascaded").SendWork(txn, "subordinate").ok());
      });
  AttachWriter(c, "subordinate");
  uint64_t txn = c.tm("coordinator").Begin();
  c.tm("coordinator").Write(txn, 0, "k", "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coordinator").SendWork(txn, "cascaded").ok());
  c.RunFor(sim::kSecond);
  DrivenCommit commit = c.CommitAndWait("coordinator", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(sim::kSecond);
  return RenderFigure(
      c, txn, "Figure 8: all resources voted reliable",
      "explicit acks are elided (implied); the cascaded coordinator and "
      "root complete as soon as their own commit records are durable",
      {"coordinator", "cascaded", "subordinate"});
}

}  // namespace

std::string RunFigureScenario(int figure) {
  switch (figure) {
    case 1:
      return FigureTwoNode(
          ProtocolKind::kBasic2PC, "Figure 1: simple two-phase commit",
          "4 flows (prepare / vote / commit / ack); coordinator forces the "
          "commit record, subordinate forces prepared and committed");
    case 2:
      return FigureChain(
          ProtocolKind::kBasic2PC,
          "Figure 2: 2PC with a cascaded coordinator",
          "the cascaded coordinator relays both phases: 8 flows total, "
          "each participant logs as in Figure 1");
    case 3:
      return FigureChain(
          ProtocolKind::kPresumedNothing,
          "Figure 3: Presumed Nothing with intermediate coordinator",
          "every coordinator (root and cascaded) forces commit-pending "
          "before sending Prepare; ENDs are forced before acks");
    case 4:
      return Figure4PartialReadOnly();
    case 5:
      return Figure5PartitionedTree();
    case 6:
      return Figure6LastAgent();
    case 7:
      return Figure7LongLocks();
    case 8:
      return Figure8VoteReliable();
    default:
      return "unknown figure " + std::to_string(figure) + " (valid: 1-8)\n";
  }
}

}  // namespace tpc::harness
