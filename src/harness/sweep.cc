#include "harness/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/format.h"

namespace tpc::harness {

double SweepCell::Get(std::string_view name, double fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

std::string SweepCell::ToString() const {
  std::string out = label;
  out += StringPrintf("|events=%llu|txns=%llu|sim_time=%lld",
                      static_cast<unsigned long long>(events),
                      static_cast<unsigned long long>(txns),
                      static_cast<long long>(sim_time));
  for (const auto& [key, value] : metrics) {
    out += StringPrintf("|%s=%.17g", key.c_str(), value);
  }
  return out;
}

unsigned ResolveThreads(unsigned threads, size_t cells) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (cells > 0 && threads > cells) threads = static_cast<unsigned>(cells);
  return threads;
}

std::vector<SweepCell> RunSweep(size_t cells,
                                const std::function<SweepCell(size_t)>& fn,
                                unsigned threads) {
  std::vector<SweepCell> results(cells);
  if (cells == 0) return results;
  threads = ResolveThreads(threads, cells);

  if (threads == 1) {
    for (size_t i = 0; i < cells; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> hold(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace tpc::harness
